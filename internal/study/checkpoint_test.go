package study

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// testResume interrupts runner after two completed points, then resumes it
// from the checkpoint file and requires the resumed figure to be
// bit-identical to an uninterrupted run — the acceptance criterion for the
// whole checkpoint/resume design (replication seeds are derived per point
// and per replication from the root seed, and any sequential precision
// schedule depends only on the spec, so skipping completed points changes
// nothing downstream).
func testResume(t *testing.T, runner Runner, cfg Config, totalPoints int) {
	t.Helper()
	ref, err := runner(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "study.ckpt.json")
	ck, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ck.onSave = func() {
		if ck.Len() >= 2 {
			cancel()
		}
	}
	interruptedCfg := cfg
	interruptedCfg.Checkpoint = ck
	if _, err := runner(ctx, interruptedCfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	done := ck.Len()
	if done < 2 {
		t.Fatalf("only %d points checkpointed before cancellation", done)
	}
	if done >= totalPoints {
		t.Fatalf("all %d points completed; cancellation never took effect", totalPoints)
	}

	ck2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Len() != done {
		t.Fatalf("reloaded checkpoint has %d points, want %d", ck2.Len(), done)
	}
	resumedCfg := cfg
	resumedCfg.Checkpoint = ck2
	got, err := runner(context.Background(), resumedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("resumed figure differs from uninterrupted run:\nref: %+v\ngot: %+v", ref, got)
	}
	if ck2.Len() != totalPoints {
		t.Fatalf("resumed run checkpointed %d points, want all %d", ck2.Len(), totalPoints)
	}
}

func TestCheckpointResume(t *testing.T) {
	testResume(t, AblationDetectionRate, Config{Reps: 60, Seed: 11, Workers: 2}, 6)
}

// TestCheckpointResumePrecision is the precision-mode variant: every sweep
// point grows its replication count sequentially toward a relative
// half-width target, and an interrupted sweep must still resume
// bit-identically (the batch schedule depends only on the spec, never on
// timing or which points were restored).
func TestCheckpointResumePrecision(t *testing.T) {
	cfg := Config{Reps: 40, Seed: 11, Workers: 2, TargetRelHW: 0.25, MaxReps: 640}
	testResume(t, AblationDetectionRate, cfg, 6)
}

// TestCheckpointResumePaired covers the CRN-paired sweep: a paired point
// flattens a two-configuration comparison into one checkpoint entry, and
// resume must restore deltas, marginals, correlations, and replication
// accounting bit-identically.
func TestCheckpointResumePaired(t *testing.T) {
	testResume(t, Fig5Paired, Config{Reps: 48, Seed: 11, Workers: 2}, 6)
}

// TestCheckpointSkipsSimulation verifies a fully checkpointed study is
// answered from the file alone: rerunning with the loaded checkpoint must
// not add points and must return the same figure.
func TestCheckpointSkipsSimulation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "study.ckpt.json")
	ck, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Reps: 40, Seed: 5, Checkpoint: ck}
	first, err := AblationDetectionRate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := ck.Len()

	ck2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	stores := 0
	ck2.onSave = func() { stores++ }
	cfg.Checkpoint = ck2
	second, err := AblationDetectionRate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stores != 0 {
		t.Fatalf("fully checkpointed rerun stored %d new points", stores)
	}
	if ck2.Len() != n {
		t.Fatalf("point count changed: %d -> %d", n, ck2.Len())
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("checkpointed rerun returned a different figure")
	}
}

// TestCheckpointKeyDiscriminates ensures the point key fingerprints
// everything that determines a result, so a checkpoint written under one
// configuration can never satisfy another.
func TestCheckpointKeyDiscriminates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "study.ckpt.json")
	ck, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Reps: 30, Seed: 5, Checkpoint: ck}
	if _, err := AblationDetectionRate(context.Background(), base); err != nil {
		t.Fatal(err)
	}
	n := ck.Len()

	for name, cfg := range map[string]Config{
		"reps": {Reps: 31, Seed: 5, Checkpoint: ck},
		"seed": {Reps: 30, Seed: 6, Checkpoint: ck},
	} {
		before := ck.Len()
		if _, err := AblationDetectionRate(context.Background(), cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ck.Len() != before+n {
			t.Fatalf("%s change reused checkpointed points: %d -> %d", name, before, ck.Len())
		}
	}
}

func TestOpenCheckpointErrors(t *testing.T) {
	dir := t.TempDir()

	// Missing file with resume: fine, empty checkpoint.
	ck, err := OpenCheckpoint(filepath.Join(dir, "absent.json"), true)
	if err != nil || ck.Len() != 0 {
		t.Fatalf("missing file: ck=%v err=%v", ck, err)
	}

	// Corrupt JSON is rejected.
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(corrupt, true); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}

	// Version mismatch is rejected.
	old := filepath.Join(dir, "old.json")
	if err := os.WriteFile(old, []byte(`{"version":99,"points":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(old, true); err == nil {
		t.Fatal("version-mismatched checkpoint accepted")
	}

	// Without resume an existing file is ignored, not loaded.
	if err := os.WriteFile(old, []byte(`{"version":99,"points":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err = OpenCheckpoint(old, false)
	if err != nil || ck.Len() != 0 {
		t.Fatalf("resume=false: ck.Len()=%d err=%v", ck.Len(), err)
	}
}
