package study

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// testResume interrupts runner after two completed points, then resumes it
// from the checkpoint file and requires the resumed figure to be
// bit-identical to an uninterrupted run — the acceptance criterion for the
// whole checkpoint/resume design (replication seeds are derived per point
// and per replication from the root seed, and any sequential precision
// schedule depends only on the spec, so skipping completed points changes
// nothing downstream).
func testResume(t *testing.T, runner Runner, cfg Config, totalPoints int) {
	t.Helper()
	ref, err := runner(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "study.ckpt.json")
	ck, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ck.onSave = func() {
		if ck.Len() >= 2 {
			cancel()
		}
	}
	interruptedCfg := cfg
	interruptedCfg.Checkpoint = ck
	if _, err := runner(ctx, interruptedCfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	done := ck.Len()
	if done < 2 {
		t.Fatalf("only %d points checkpointed before cancellation", done)
	}
	if done >= totalPoints {
		t.Fatalf("all %d points completed; cancellation never took effect", totalPoints)
	}

	ck2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Len() != done {
		t.Fatalf("reloaded checkpoint has %d points, want %d", ck2.Len(), done)
	}
	resumedCfg := cfg
	resumedCfg.Checkpoint = ck2
	got, err := runner(context.Background(), resumedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("resumed figure differs from uninterrupted run:\nref: %+v\ngot: %+v", ref, got)
	}
	if ck2.Len() != totalPoints {
		t.Fatalf("resumed run checkpointed %d points, want all %d", ck2.Len(), totalPoints)
	}
}

func TestCheckpointResume(t *testing.T) {
	testResume(t, AblationDetectionRate, Config{Reps: 60, Seed: 11, Workers: 2}, 6)
}

// TestCheckpointResumePrecision is the precision-mode variant: every sweep
// point grows its replication count sequentially toward a relative
// half-width target, and an interrupted sweep must still resume
// bit-identically (the batch schedule depends only on the spec, never on
// timing or which points were restored).
func TestCheckpointResumePrecision(t *testing.T) {
	cfg := Config{Reps: 40, Seed: 11, Workers: 2, TargetRelHW: 0.25, MaxReps: 640}
	testResume(t, AblationDetectionRate, cfg, 6)
}

// TestCheckpointResumePaired covers the CRN-paired sweep: a paired point
// flattens a two-configuration comparison into one checkpoint entry, and
// resume must restore deltas, marginals, correlations, and replication
// accounting bit-identically.
func TestCheckpointResumePaired(t *testing.T) {
	testResume(t, Fig5Paired, Config{Reps: 48, Seed: 11, Workers: 2}, 6)
}

// TestCheckpointSkipsSimulation verifies a fully checkpointed study is
// answered from the file alone: rerunning with the loaded checkpoint must
// not add points and must return the same figure.
func TestCheckpointSkipsSimulation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "study.ckpt.json")
	ck, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Reps: 40, Seed: 5, Checkpoint: ck}
	first, err := AblationDetectionRate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := ck.Len()

	ck2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	stores := 0
	ck2.onSave = func() { stores++ }
	cfg.Checkpoint = ck2
	second, err := AblationDetectionRate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stores != 0 {
		t.Fatalf("fully checkpointed rerun stored %d new points", stores)
	}
	if ck2.Len() != n {
		t.Fatalf("point count changed: %d -> %d", n, ck2.Len())
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("checkpointed rerun returned a different figure")
	}
}

// TestCheckpointKeyDiscriminates ensures the point key fingerprints
// everything that determines a result, so a checkpoint written under one
// configuration can never satisfy another.
func TestCheckpointKeyDiscriminates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "study.ckpt.json")
	ck, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Reps: 30, Seed: 5, Checkpoint: ck}
	if _, err := AblationDetectionRate(context.Background(), base); err != nil {
		t.Fatal(err)
	}
	n := ck.Len()

	for name, cfg := range map[string]Config{
		"reps": {Reps: 31, Seed: 5, Checkpoint: ck},
		"seed": {Reps: 30, Seed: 6, Checkpoint: ck},
	} {
		before := ck.Len()
		if _, err := AblationDetectionRate(context.Background(), cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ck.Len() != before+n {
			t.Fatalf("%s change reused checkpointed points: %d -> %d", name, before, ck.Len())
		}
	}
}

// writeCheckpointLines builds a checkpoint file holding n valid entries and
// returns the path plus the individual lines (without trailing newlines).
func writeCheckpointLines(t *testing.T, dir string, n int) (string, [][]byte) {
	t.Helper()
	path := filepath.Join(dir, "study.ckpt.json")
	var buf []byte
	var lines [][]byte
	for i := 0; i < n; i++ {
		pr := &PointResult{Reps: 10 + i, Completed: 10 + i}
		line, err := encodeCheckpointLine(fmt.Sprintf("point-%d", i), pr)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, bytes.TrimSuffix(line, []byte("\n")))
		buf = append(buf, line...)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, lines
}

// TestOpenCheckpointMissingAndFresh: absent files and resume=false both
// yield an empty checkpoint without touching anything on disk.
func TestOpenCheckpointMissingAndFresh(t *testing.T) {
	dir := t.TempDir()

	ck, err := OpenCheckpoint(filepath.Join(dir, "absent.json"), true)
	if err != nil || ck.Len() != 0 {
		t.Fatalf("missing file: ck=%v err=%v", ck, err)
	}
	if ck.Recovery().Damaged() {
		t.Fatal("missing file reported as damaged")
	}

	// Without resume an existing file is ignored, not loaded — and not
	// quarantined either: it is simply replaced at the first store.
	path, _ := writeCheckpointLines(t, dir, 3)
	ck, err = OpenCheckpoint(path, false)
	if err != nil || ck.Len() != 0 {
		t.Fatalf("resume=false: ck.Len()=%d err=%v", ck.Len(), err)
	}
	if err := ck.store("k", &PointResult{}); err != nil {
		t.Fatal(err)
	}
	reck, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if reck.Len() != 1 {
		t.Fatalf("first store did not replace the stale file: %d points", reck.Len())
	}
}

// TestCheckpointQuarantine exercises every damage class the verifier must
// catch: a torn (truncated) final line, a flipped byte inside an entry, a
// pre-v3 whole-file checkpoint, and a checksum-valid entry carrying a
// foreign schema version. In each case the damaged file is quarantined to
// <path>.corrupt-<n>, the intact entries are salvaged, and Recovery says so.
func TestCheckpointQuarantine(t *testing.T) {
	cases := []struct {
		name     string
		damage   func(t *testing.T, lines [][]byte) []byte
		salvaged int
		dropped  int
		stale    int
	}{
		{
			name: "truncated-final-line",
			damage: func(t *testing.T, lines [][]byte) []byte {
				// Simulate a kill mid-append: last line cut in half.
				buf := bytes.Join(lines[:2], []byte("\n"))
				buf = append(buf, '\n')
				return append(buf, lines[2][:len(lines[2])/2]...)
			},
			salvaged: 2, dropped: 1,
		},
		{
			name: "flipped-byte",
			damage: func(t *testing.T, lines [][]byte) []byte {
				// Flip one byte inside the second entry's payload: the
				// envelope still parses but the checksum no longer matches.
				mut := append([]byte(nil), lines[1]...)
				i := bytes.Index(mut, []byte(`"point"`))
				if i < 0 {
					t.Fatal("no point field to corrupt")
				}
				mut[i+10] ^= 0x01
				return bytes.Join([][]byte{lines[0], mut, lines[2]}, []byte("\n"))
			},
			salvaged: 2, dropped: 1,
		},
		{
			name: "stale-whole-file-v2",
			damage: func(t *testing.T, lines [][]byte) []byte {
				return []byte(`{"version":2,"points":{}}`)
			},
			salvaged: 0, stale: 1,
		},
		{
			name: "checksum-valid-version-mismatch",
			damage: func(t *testing.T, lines [][]byte) []byte {
				// An entry with a correct checksum but a foreign schema
				// version: honestly written by other code, still unusable.
				entry := []byte(`{"v":99,"key":"point-x","point":{"X":1,"Reps":5}}`)
				sum := sha256.Sum256(entry)
				line, err := json.Marshal(checkpointLine{
					Sum: hex.EncodeToString(sum[:]), Entry: entry,
				})
				if err != nil {
					t.Fatal(err)
				}
				return bytes.Join([][]byte{lines[0], line, lines[2]}, []byte("\n"))
			},
			salvaged: 2, stale: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path, lines := writeCheckpointLines(t, dir, 3)
			if err := os.WriteFile(path, tc.damage(t, lines), 0o644); err != nil {
				t.Fatal(err)
			}
			ck, err := OpenCheckpoint(path, true)
			if err != nil {
				t.Fatal(err)
			}
			rec := ck.Recovery()
			if !rec.Damaged() {
				t.Fatal("damage not detected")
			}
			want := Recovery{
				Quarantined: path + ".corrupt-1",
				Salvaged:    tc.salvaged,
				Dropped:     tc.dropped,
				Stale:       tc.stale,
			}
			if rec != want {
				t.Fatalf("recovery = %+v, want %+v", rec, want)
			}
			if ck.Len() != tc.salvaged {
				t.Fatalf("salvaged %d points, want %d", ck.Len(), tc.salvaged)
			}
			if _, err := os.Stat(rec.Quarantined); err != nil {
				t.Fatalf("quarantine file: %v", err)
			}
			// The rewritten file must verify clean on a second open.
			reck, err := OpenCheckpoint(path, true)
			if err != nil {
				t.Fatal(err)
			}
			if reck.Recovery().Damaged() || reck.Len() != tc.salvaged {
				t.Fatalf("rewritten file not clean: %+v, %d points",
					reck.Recovery(), reck.Len())
			}
		})
	}
}

// TestCheckpointQuarantineNumbering: a second quarantine must not clobber
// the first — it picks the next free .corrupt-<n> suffix.
func TestCheckpointQuarantineNumbering(t *testing.T) {
	dir := t.TempDir()
	for i := 1; i <= 2; i++ {
		path := filepath.Join(dir, "study.ckpt.json")
		if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		ck, err := OpenCheckpoint(path, true)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("%s.corrupt-%d", path, i)
		if got := ck.Recovery().Quarantined; got != want {
			t.Fatalf("quarantine %d went to %s, want %s", i, got, want)
		}
	}
}

// TestCheckpointResumeAfterCorruption is the end-to-end acceptance test:
// run a study to completion under a checkpoint, flip one byte in one entry,
// and resume. The damaged file must be quarantined, every intact point
// salvaged and skipped, only the damaged point recomputed, and the resumed
// figure bit-identical to the uninterrupted run.
func TestCheckpointResumeAfterCorruption(t *testing.T) {
	cfg := Config{Reps: 40, Seed: 11, Workers: 2}
	ref, err := AblationDetectionRate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "study.ckpt.json")
	ck, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	full := cfg
	full.Checkpoint = ck
	if _, err := AblationDetectionRate(context.Background(), full); err != nil {
		t.Fatal(err)
	}
	total := ck.Len()
	if total < 3 {
		t.Fatalf("study checkpointed only %d points", total)
	}

	// Flip a byte in the middle entry's payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	if len(lines) != total {
		t.Fatalf("%d lines on disk, %d points stored", len(lines), total)
	}
	victim := lines[total/2]
	i := bytes.Index(victim, []byte(`"point"`))
	if i < 0 {
		t.Fatal("no point field in checkpoint line")
	}
	victim[i+10] ^= 0x01
	if err := os.WriteFile(path, append(bytes.Join(lines, []byte("\n")), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	rec := ck2.Recovery()
	if !rec.Damaged() || rec.Salvaged != total-1 || rec.Dropped != 1 {
		t.Fatalf("recovery = %+v, want %d salvaged and 1 dropped", rec, total-1)
	}
	if _, err := os.Stat(rec.Quarantined); err != nil {
		t.Fatalf("quarantine file: %v", err)
	}

	stores := 0
	ck2.onSave = func() { stores++ }
	resumed := cfg
	resumed.Checkpoint = ck2
	got, err := AblationDetectionRate(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if stores != 1 {
		t.Fatalf("resume recomputed %d points, want only the damaged 1", stores)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("resumed figure differs from uninterrupted run:\nref: %+v\ngot: %+v", ref, got)
	}
}

// FuzzCheckpointLine hardens the resume path: whatever bytes end up in a
// checkpoint line — torn writes, bit rot, hostile edits — the verifier must
// classify them without panicking, and must never accept a line whose
// checksum does not bind its payload.
func FuzzCheckpointLine(f *testing.F) {
	good, err := encodeCheckpointLine("point-0", &PointResult{Reps: 40, Completed: 40})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bytes.TrimSuffix(good, []byte("\n")))
	f.Add([]byte(`{"version":2,"points":{}}`))
	f.Add([]byte(`{"sum":"","entry":{}}`))
	f.Add([]byte("{not json"))
	f.Fuzz(func(t *testing.T, line []byte) {
		key, pr, verdict := decodeCheckpointLine(line)
		if verdict != lineOK {
			return
		}
		if key == "" || pr == nil {
			t.Fatalf("accepted line with key=%q pr=%v", key, pr)
		}
		// An accepted line must carry a checksum that re-verifies: the sum
		// field must bind the exact entry bytes.
		var l checkpointLine
		if err := json.Unmarshal(line, &l); err != nil {
			t.Fatalf("accepted unparsable line: %v", err)
		}
		sum := sha256.Sum256(l.Entry)
		if hex.EncodeToString(sum[:]) != l.Sum {
			t.Fatal("accepted line whose checksum does not match its entry")
		}
	})
}
