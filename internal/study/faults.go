package study

import (
	"context"
	"fmt"
	"math"

	"ituaval/internal/core"
	"ituaval/internal/exact"
	"ituaval/internal/ituadirect"
	"ituaval/internal/rng"
	"ituaval/internal/rsm"
	"ituaval/internal/stats"
)

// FaultPartitionRates is the X grid of the environment-fault study: the
// rate at which the network severs a random domain pair, in 1/h.
var FaultPartitionRates = []float64{0, 2, 4, 8}

// FaultCampaignRates is the series grid: correlated attack campaigns off
// and on (each firing targets a Binomial(2, 0.5) batch of hosts).
var FaultCampaignRates = []float64{0, 0.5}

// faultsParams is the configuration the environment-fault study sweeps: the
// same small two-domain topology as the live study, with the full
// environment vocabulary armed — exponential-healing partitions, correlated
// attack campaigns (inert while CampaignRate is zero), and a single-member
// repair crew (with one application, capacity one is distributionally
// identical to the unbounded crew, so the zero-rate corner stays the
// baseline).
func faultsParams(partRate, campRate float64) core.Params {
	p := core.DefaultParams()
	p.NumDomains = 2
	p.HostsPerDomain = 1
	p.NumApps = 1
	p.RepsPerApp = 2
	p.CorruptionMult = 5
	p.Policy = core.DomainExclusion
	p.PartitionRate = partRate
	p.PartitionHealRate = 2
	p.CampaignRate = campRate
	p.CampaignSize = 2
	p.CampaignProb = 0.5
	p.RepairCrew = 1
	return p
}

// faultSeriesName labels one (arm, campaign-rate) series. The SAN arm's
// names double as the series labels of testdata/scenarios/faults.json, so
// the declarative path reproduces the SAN sweep byte-for-byte.
func faultSeriesName(arm string, campRate float64) string {
	return fmt.Sprintf("%s campaignRate=%g", arm, campRate)
}

// Faults is the environment-fault study: over a partition-rate × campaign
// grid on the small faultsParams configuration it estimates interval
// unavailability and unreliability three ways — the SAN model, the
// independent direct simulator, and a real fault-injected replica group
// whose transport links are actually severed and healed — and anchors one
// grid point to the numerically exact uniformization values. The notes
// record the live probe/divergence counts, the worst pairwise deviation in
// combined 95% half-widths, and the exact-anchor coverage; the companion
// test (faults_test.go) and `make faultcheck` turn those into assertions.
// Only the SAN arm is checkpointed; the other arms are cheap to recompute
// at study effort and the exact values are deterministic.
func Faults(ctx context.Context, cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	const T = 6.0
	fig := &Figure{ID: "X9", Title: "Environment Faults: Partitions, Campaigns, and a Bounded Repair Crew, 2 Domains x 1 Host"}
	panels := []Panel{
		{ID: "X9a", Measure: "Unavailability for the first 6 hours", XLabel: "partition rate (1/h)"},
		{ID: "X9b", Measure: "Unreliability for the first 6 hours", XLabel: "partition rate (1/h)"},
	}
	measures := []string{"unavail", "unrel"}
	nX := len(FaultPartitionRates)

	// SAN arm: an ordinary checkpointable sweep, series-major like the
	// compiled scenario grid (seed offsets 8000+pi).
	sw := newSweep(cfg)
	prs := make([]*PointResult, len(FaultCampaignRates)*nX)
	for si, camp := range FaultCampaignRates {
		for xi, part := range FaultPartitionRates {
			pi := si*nX + xi
			sw.add(&prs[pi], fmt.Sprintf("faults camp=%g part=%g", camp, part),
				cfg, faultsParams(part, camp), T, uint64(8000+pi), liveVars(T))
		}
	}
	if err := sw.run(ctx); err != nil {
		return nil, err
	}

	// Direct and live arms, plus the agreement notes.
	sanSeries := make([][2]Series, len(FaultCampaignRates))
	dirSeries := make([][2]Series, len(FaultCampaignRates))
	liveSeries := make([][2]Series, len(FaultCampaignRates))
	for si, camp := range FaultCampaignRates {
		for i := range panels {
			sanSeries[si][i].Name = faultSeriesName("SAN", camp)
			dirSeries[si][i].Name = faultSeriesName("direct", camp)
			liveSeries[si][i].Name = faultSeriesName("live", camp)
		}
	}
	var probes, divergences int64
	worstSigma := 0.0
	for si, camp := range FaultCampaignRates {
		for xi, part := range FaultPartitionRates {
			pi := si*nX + xi
			p := faultsParams(part, camp)

			// Direct arm: the independently coded Gillespie simulator.
			var dir [2]stats.Accumulator
			root := rng.New(cfg.Seed + uint64(8100+pi))
			for rep := 0; rep < cfg.Reps; rep++ {
				dres, err := ituadirect.RunContext(ctx, p, root.Derive(uint64(rep)), []float64{T})
				if err != nil {
					return nil, fmt.Errorf("faults camp=%g part=%g: direct: %w", camp, part, err)
				}
				dir[0].Add(dres.UnavailTime[0] / T)
				if dres.ByzantineBy[0] {
					dir[1].Add(1)
				} else {
					dir[1].Add(0)
				}
			}

			// Live arm: fault-injected replica groups whose transport is
			// really partitioned and healed by the environment process.
			lres, err := rsm.Run(ctx, rsm.Spec{
				Params:         p,
				T:              T,
				Reps:           cfg.Reps,
				Seed:           cfg.Seed + uint64(9000+pi),
				Workers:        cfg.Workers,
				RepDeadline:    cfg.RepDeadline,
				MaxFailureFrac: cfg.MaxFailureFrac,
			})
			if err != nil {
				return nil, fmt.Errorf("faults camp=%g part=%g: live: %w", camp, part, err)
			}
			if lres.Failed > 0 {
				cfg.warnf("faults camp=%g part=%g: %d of %d live replications failed (%v)",
					camp, part, lres.Failed, cfg.Reps, lres.Failures)
			}
			probes += lres.Probes
			divergences += lres.Divergences

			live := [2]interface {
				Mean() float64
				HalfWidth(float64) float64
			}{&lres.Unavail, &lres.Unrel}
			for i, name := range measures {
				appendPoint(&sanSeries[si][i], part, name, prs[pi])
				appendCell(&dirSeries[si][i], part, dir[i].Mean(), dir[i].HalfWidth(0.95), dir[i].N(), cfg.Reps, cfg.Reps, 0, 0)
				appendCell(&liveSeries[si][i], part, live[i].Mean(), live[i].HalfWidth(0.95),
					int64(lres.Reps), cfg.Reps, lres.Reps, lres.Failed, 0)
				e := prs[pi].Est[name]
				for _, pair := range [][2]float64{
					{dir[i].Mean(), dir[i].HalfWidth(0.95)},
					{live[i].Mean(), live[i].HalfWidth(0.95)},
				} {
					if hw := e.HalfWidth95 + pair[1]; hw > 0 {
						if sig := math.Abs(e.Mean-pair[0]) / hw; sig > worstSigma {
							worstSigma = sig
						}
					}
				}
			}
		}
	}
	for i := range panels {
		for si := range FaultCampaignRates {
			panels[i].Series = append(panels[i].Series, sanSeries[si][i])
		}
		for si := range FaultCampaignRates {
			panels[i].Series = append(panels[i].Series, dirSeries[si][i])
		}
		for si := range FaultCampaignRates {
			panels[i].Series = append(panels[i].Series, liveSeries[si][i])
		}
	}

	// Exact anchor: the partition-only point at rate FaultPartitionRates[1]
	// stays generateable (~6·10^5 states), pinning the sampled arms to the
	// uniformization values of the same fault-extended model.
	anchor := faultsParams(FaultPartitionRates[1], 0)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := exact.NewSolver(anchor, exact.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("faults exact anchor: %w", err)
	}
	exU, err := s.Unavailability(0, T)
	if err != nil {
		return nil, fmt.Errorf("faults exact anchor unavailability: %w", err)
	}
	exR, err := s.Unreliability(0, T)
	if err != nil {
		return nil, fmt.Errorf("faults exact anchor unreliability: %w", err)
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("live arm: %d client probes, %d oracle divergences (expect 0)", probes, divergences),
		fmt.Sprintf("worst pairwise |SAN - other arm| across all points: %.2f combined half-widths (expect < 1 at 95%%)", worstSigma),
		fmt.Sprintf("exact anchor (camp=0, part=%g, %d states): unavail %.6g, unrel %.6g",
			FaultPartitionRates[1], s.C.NumStates(), exU, exR))
	fig.Panels = panels
	return fig, nil
}
