package study

import (
	"context"
	"fmt"
	"math"

	"ituaval/internal/core"
	"ituaval/internal/reward"
	"ituaval/internal/rsm"
)

// LiveSpreadRates is the sweep grid of the live study — the Figure-5
// intra-domain spread rates.
var LiveSpreadRates = Fig5SpreadRates

// liveParams is the configuration the live study sweeps: the same small
// two-domain topology as the analytic study, so the live service's replica
// groups stay cheap enough to run thousands of protocol executions per
// sweep point.
func liveParams(spread float64) core.Params {
	p := core.DefaultParams()
	p.NumDomains = 2
	p.HostsPerDomain = 1
	p.NumApps = 1
	p.RepsPerApp = 2
	p.CorruptionMult = 5
	p.DomainSpreadRate = spread
	p.Policy = core.DomainExclusion
	return p
}

// liveVars are the SAN counterparts of the live service's measures.
func liveVars(T float64) func(m *core.Model) []reward.Var {
	return func(m *core.Model) []reward.Var {
		return []reward.Var{
			m.Unavailability("unavail", 0, 0, T),
			m.Unreliability("unrel", 0, T),
		}
	}
}

// Live is the model-vs-measurement study: for every Figure-5 spread rate on
// the small liveParams configuration it estimates interval unavailability
// and unreliability twice — by simulating the SAN model, and by running a
// real message-passing replica group (internal/rsm) under the model's
// attack process and measuring the service a synthetic client actually
// receives — and plots both series per panel. The notes record the live
// probe count, the probe-vs-oracle divergences (zero under the worst-case
// adversary), and the worst model-vs-live deviation in units of the
// combined 95% half-widths. Live points are not checkpointed: a sweep point
// is a few thousand in-process protocol runs and recomputing it is cheap.
func Live(ctx context.Context, cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	const T = 6.0
	fig := &Figure{ID: "L", Title: "Model versus Live Replicated Service, 2 Domains x 1 Host"}
	panels := []Panel{
		{ID: "La", Measure: "Unavailability for the first 6 hours", XLabel: "spread rate"},
		{ID: "Lb", Measure: "Unreliability for the first 6 hours", XLabel: "spread rate"},
	}
	measures := []string{"unavail", "unrel"}

	// Model arm: an ordinary checkpointable SAN sweep.
	sw := newSweep(cfg)
	prs := make([]*PointResult, len(LiveSpreadRates))
	for pi, spread := range LiveSpreadRates {
		sw.add(&prs[pi], fmt.Sprintf("live spread=%v", spread),
			cfg, liveParams(spread), T, uint64(6000+pi), liveVars(T))
	}
	if err := sw.run(ctx); err != nil {
		return nil, err
	}

	// Live arm: fault-injected replica groups, probed by a synthetic client.
	var liveSeries, sanSeries [2]Series
	for i := range panels {
		liveSeries[i].Name = "live service"
		sanSeries[i].Name = "SAN simulation"
	}
	var probes, divergences int64
	worstSigma := 0.0
	for pi, spread := range LiveSpreadRates {
		res, err := rsm.Run(ctx, rsm.Spec{
			Params:         liveParams(spread),
			T:              T,
			Reps:           cfg.Reps,
			Seed:           cfg.Seed + uint64(7000+pi),
			Workers:        cfg.Workers,
			RepDeadline:    cfg.RepDeadline,
			MaxFailureFrac: cfg.MaxFailureFrac,
		})
		if err != nil {
			return nil, fmt.Errorf("live spread=%v: %w", spread, err)
		}
		if res.Failed > 0 {
			cfg.warnf("live spread=%v: %d of %d replications failed (%v)",
				spread, res.Failed, cfg.Reps, res.Failures)
		}
		probes += res.Probes
		divergences += res.Divergences
		for i, acc := range []interface {
			Mean() float64
			HalfWidth(float64) float64
		}{&res.Unavail, &res.Unrel} {
			appendCell(&liveSeries[i], spread, acc.Mean(), acc.HalfWidth(0.95),
				int64(res.Reps), cfg.Reps, res.Reps, res.Failed, 0)
			appendPoint(&sanSeries[i], spread, measures[i], prs[pi])
			e := prs[pi].Est[measures[i]]
			if hw := e.HalfWidth95 + acc.HalfWidth(0.95); hw > 0 {
				if sig := math.Abs(e.Mean-acc.Mean()) / hw; sig > worstSigma {
					worstSigma = sig
				}
			}
		}
	}
	for i := range panels {
		panels[i].Series = []Series{sanSeries[i], liveSeries[i]}
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("live arm: %d client probes, %d oracle divergences (expect 0)", probes, divergences),
		fmt.Sprintf("worst |model - live| across all points: %.2f combined half-widths (expect < 1 at 95%%)", worstSigma))
	fig.Panels = panels
	return fig, nil
}
