package study

import (
	"testing"

	"ituaval/internal/core"
	"ituaval/internal/san"
)

// TestLintRegisteredModels is the model lint lane (`make lint-models`): it
// builds every parameter shape a registered study sweeps through and fails
// on any static-analysis finding — an unreachable activity, an orphaned or
// never-read place, a case distribution off unity, or a violated declared
// bound. The shapes include the structural corners (zero rates, degenerate
// topologies) where dead structure is most likely to hide.
func TestLintRegisteredModels(t *testing.T) {
	shapes := StudyModelShapes()
	if len(shapes) < 15 {
		t.Fatalf("only %d study shapes enumerated; registry has %d studies", len(shapes), len(Registry))
	}
	covered := map[string]bool{}
	for _, sh := range shapes {
		covered[sh.Study] = true
		sh := sh
		t.Run(sh.Study+"/"+sh.Name, func(t *testing.T) {
			t.Parallel()
			m, err := core.Build(sh.Params)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range m.SAN.Lint(san.LintOptions{}) {
				t.Errorf("%s", f)
			}
		})
	}
	t.Run("numval/reduced", func(t *testing.T) {
		t.Parallel()
		m, _, _, _, err := reducedValidationModel()
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range m.Lint(san.LintOptions{}) {
			t.Errorf("%s", f)
		}
	})
	covered["numval"] = true
	// fig5-paired sweeps exactly the fig5 shapes on both policies.
	covered["fig5-paired"] = covered["fig5"]
	for id := range Registry {
		if !covered[id] {
			t.Errorf("registry study %q has no linted model shape", id)
		}
	}
}
