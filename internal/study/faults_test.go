package study

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
)

// The environment-fault study's acceptance criterion: at every grid point
// the SAN, direct, and live 95% intervals overlap pairwise, the live
// probes never diverge from the model oracle, and the exact anchor lies in
// the union of the three sampled intervals at its grid point.
func TestFaultsStudyArmsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("the exact anchor (an 863k-state uniformization) is too heavy under -race")
	}
	fig, err := Faults(context.Background(), Config{Reps: 60, Seed: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 2 {
		t.Fatalf("%d panels, want 2", len(fig.Panels))
	}
	nS := len(FaultCampaignRates)
	for _, p := range fig.Panels {
		if len(p.Series) != 3*nS {
			t.Fatalf("panel %s: %d series, want %d", p.ID, len(p.Series), 3*nS)
		}
		for si := 0; si < nS; si++ {
			san, dir, live := p.Series[si], p.Series[nS+si], p.Series[2*nS+si]
			for i := range san.X {
				for _, arm := range []struct {
					name string
					s    Series
				}{{"direct", dir}, {"live", live}} {
					if d := math.Abs(san.Y[i] - arm.s.Y[i]); d > san.HW[i]+arm.s.HW[i] {
						t.Errorf("panel %s %s vs %s at x=%g: |%g - %g| = %g exceeds combined half-width %g",
							p.ID, san.Name, arm.s.Name, san.X[i], san.Y[i], arm.s.Y[i], d, san.HW[i]+arm.s.HW[i])
					}
				}
			}
		}
	}

	// Notes: live divergences, and the exact anchor's coverage.
	if len(fig.Notes) < 3 {
		t.Fatalf("%d notes, want >= 3: %v", len(fig.Notes), fig.Notes)
	}
	if !strings.Contains(fig.Notes[0], ", 0 oracle divergences") {
		t.Errorf("live probes diverged from the model oracle: %s", fig.Notes[0])
	}
	var part, exU, exR float64
	var states int
	if _, err := fmt.Sscanf(fig.Notes[2], "exact anchor (camp=0, part=%g, %d states): unavail %g, unrel %g",
		&part, &states, &exU, &exR); err != nil {
		t.Fatalf("unparsable exact-anchor note %q: %v", fig.Notes[2], err)
	}
	xi := -1
	for i, r := range FaultPartitionRates {
		if r == part {
			xi = i
		}
	}
	if xi < 0 {
		t.Fatalf("exact anchor at partition rate %g, not on the grid %v", part, FaultPartitionRates)
	}
	for pi, exact := range []float64{exU, exR} {
		p := fig.Panels[pi]
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range []Series{p.Series[0], p.Series[nS], p.Series[2*nS]} {
			lo = math.Min(lo, s.Y[xi]-s.HW[xi])
			hi = math.Max(hi, s.Y[xi]+s.HW[xi])
		}
		if exact < lo || exact > hi {
			t.Errorf("panel %s: exact anchor %g outside the sampled union [%g, %g]", p.ID, exact, lo, hi)
		}
	}
}
