package study

// Determinism regression harness for the engine hot path. The golden file
// (testdata/determinism_golden.json) was captured from the engine BEFORE the
// allocation-free/flattened-scheduling overhaul, so this test proves the
// optimized engine samples bit-identical trajectories:
//
//   - fixed-seed figure panels (fig3/fig4/fig5) must reproduce the golden
//     values at Workers=1 AND Workers=8 — the flattened sweep scheduler
//     aggregates in replication order, so results are worker-count-invariant
//     and equal to the sequential (Workers=1) reference;
//   - sim.RunContext in CRN and non-CRN mode is pinned per worker count
//     (its strided aggregation is intentionally unchanged);
//   - an integrity.CrossCheck smoke (SAN engine vs the independent direct
//     simulator) is pinned per worker count.
//
// Every float is compared by its IEEE-754 bit pattern, not by tolerance.
// Regenerate with `go test ./internal/study -run TestDeterminismGolden
// -update-golden` — but only when a change is MEANT to alter sampled
// trajectories, which is a compatibility break worth a changelog entry.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"ituaval/internal/core"
	"ituaval/internal/integrity"
	"ituaval/internal/reward"
	"ituaval/internal/sim"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/determinism_golden.json from the current engine (Workers=1 reference)")

const goldenPath = "testdata/determinism_golden.json"

// detFigureIDs are the figure experiments pinned by the golden file.
var detFigureIDs = []string{"fig3", "fig4", "fig5"}

// detFigure runs one figure experiment at reduced effort with the given
// worker count and flattens every panel value into bit-exact strings.
func detFigure(t *testing.T, id string, workers int) []string {
	t.Helper()
	cfg := Config{Reps: 60, Seed: 7, Workers: workers}
	fig, err := RunContext(context.Background(), id, cfg)
	if err != nil {
		t.Fatalf("%s (workers=%d): %v", id, workers, err)
	}
	return flattenFigure(fig)
}

func flattenFigure(f *Figure) []string {
	var out []string
	for _, p := range f.Panels {
		for _, s := range p.Series {
			for i := range s.X {
				out = append(out, fmt.Sprintf("%s|%s|%d|x=%016x|y=%016x|hw=%016x|n=%d",
					p.ID, s.Name, i,
					math.Float64bits(s.X[i]), math.Float64bits(s.Y[i]),
					math.Float64bits(s.HW[i]), int64At(s.N, i)))
			}
		}
	}
	return out
}

// detParams is a small ITUA configuration shared by the sim and crosscheck
// scenarios, so the harness stays fast enough for every `go test` run.
func detParams() core.Params {
	p := core.DefaultParams()
	p.NumDomains = 4
	p.HostsPerDomain = 2
	p.NumApps = 3
	p.RepsPerApp = 4
	return p
}

// detSim pins sim.RunContext itself (the strided worker partition, which
// the sweep flattening intentionally leaves untouched) in both sampling
// modes and at two worker counts.
func detSim(t *testing.T, workers int, crn bool) []string {
	t.Helper()
	m, err := core.Build(detParams())
	if err != nil {
		t.Fatal(err)
	}
	const T = 6.0
	res, err := sim.RunContext(context.Background(), sim.Spec{
		Model: m.SAN, Until: T, Reps: 50, Seed: 11, Workers: workers, CRN: crn,
		Vars: []reward.Var{
			m.Unavailability("unavail", 0, 0, T),
			m.Unreliability("unrel", 0, T),
			m.FracDomainsExcluded("excl", T),
		},
	})
	if err != nil {
		t.Fatalf("sim (workers=%d crn=%v): %v", workers, crn, err)
	}
	out := []string{fmt.Sprintf("firings=%d|completed=%d", res.TotalFirings, res.Completed)}
	for _, e := range res.Estimates {
		out = append(out, fmt.Sprintf("%s|mean=%016x|hw=%016x|min=%016x|max=%016x|n=%d",
			e.Name, math.Float64bits(e.Mean), math.Float64bits(e.HalfWidth95),
			math.Float64bits(e.Min), math.Float64bits(e.Max), e.N))
	}
	return out
}

// detCross pins the integrity.CrossCheck smoke: both the SAN-engine
// estimates and the independent direct simulator's.
func detCross(t *testing.T, workers int) []string {
	t.Helper()
	rep, err := integrity.CrossCheck(context.Background(), detParams(),
		integrity.CrossCheckOptions{Reps: 120, T: 4, Seed: 3, Workers: workers})
	if err != nil {
		t.Fatalf("crosscheck (workers=%d): %v", workers, err)
	}
	var out []string
	for _, m := range rep.Measures {
		out = append(out, fmt.Sprintf("%s|san=%016x|sanhw=%016x|direct=%016x|directhw=%016x",
			m.Name, math.Float64bits(m.SANMean), math.Float64bits(m.SANHalf),
			math.Float64bits(m.DirectMean), math.Float64bits(m.DirectHalf)))
	}
	return out
}

// captureGolden produces the reference scenarios: figures at Workers=1 (the
// sequential order every worker count must reproduce), sim and crosscheck
// per worker count (their strided aggregation is worker-count-specific by
// design, but stable for a fixed count).
func captureGolden(t *testing.T) map[string][]string {
	g := make(map[string][]string)
	for _, id := range detFigureIDs {
		g[id] = detFigure(t, id, 1)
	}
	for _, w := range []int{1, 8} {
		for _, crn := range []bool{false, true} {
			g[fmt.Sprintf("sim/workers=%d/crn=%v", w, crn)] = detSim(t, w, crn)
		}
		g[fmt.Sprintf("crosscheck/workers=%d", w)] = detCross(t, w)
	}
	return g
}

func compareLines(t *testing.T, scenario string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d values, golden has %d", scenario, len(got), len(want))
	}
	diffs := 0
	for i := 0; i < len(got) && i < len(want); i++ {
		if got[i] != want[i] {
			if diffs < 5 {
				t.Errorf("%s[%d]:\n  got  %s\n  want %s", scenario, i, got[i], want[i])
			}
			diffs++
		}
	}
	if diffs > 5 {
		t.Errorf("%s: %d further mismatches suppressed", scenario, diffs-5)
	}
}

func TestDeterminismGolden(t *testing.T) {
	if *updateGolden {
		g := captureGolden(t)
		data, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d scenarios)", goldenPath, len(g))
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	var want map[string][]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	// Figures: the same golden (captured sequentially) must hold at every
	// worker count — the flattened scheduler's invariance guarantee.
	for _, id := range detFigureIDs {
		for _, w := range []int{1, 8} {
			compareLines(t, fmt.Sprintf("%s/workers=%d", id, w), detFigure(t, id, w), want[id])
		}
	}
	for _, w := range []int{1, 8} {
		for _, crn := range []bool{false, true} {
			key := fmt.Sprintf("sim/workers=%d/crn=%v", w, crn)
			compareLines(t, key, detSim(t, w, crn), want[key])
		}
		key := fmt.Sprintf("crosscheck/workers=%d", w)
		compareLines(t, key, detCross(t, w), want[key])
	}
}
