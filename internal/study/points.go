package study

import (
	"context"

	"ituaval/internal/core"
	"ituaval/internal/reward"
)

// PointSpec describes one sweep point for RunSweep: a model configuration,
// the simulation horizon, the reward variables to estimate, and the seed
// offset that keeps the point's replication streams disjoint from every
// other point's. It is the declarative counterpart of what the registered
// figure runners hard-code, and the compilation target of the scenario DSL
// (internal/scenario).
type PointSpec struct {
	// Label prefixes any error attributed to this point.
	Label string
	// Params is the model configuration of the point.
	Params core.Params
	// Until is the simulation horizon in hours.
	Until float64
	// SeedOffset is added to Config.Seed to form the point's root seed.
	// Distinct points must use distinct offsets.
	SeedOffset uint64
	// Vars builds the reward variables on the constructed model.
	Vars func(m *core.Model) []reward.Var
}

// SweepHooks are optional progress callbacks for RunSweep. In the flat
// (fixed-replication) path both hooks fire from simulation worker
// goroutines while other points are still running, so they must be safe for
// concurrent use and must not block; in precision mode OnPoint fires
// synchronously between points.
type SweepHooks struct {
	// OnRep is called after every finished replication (completed, failed,
	// or drained after cancellation) of the given point index. It is not
	// called in precision mode, whose replication schedule is adaptive.
	OnRep func(point int)
	// OnPoint is called once per point with its aggregated result: when the
	// worker pool finishes the point's last replication (before the
	// deterministic commit/checkpoint pass), when a checkpointed point is
	// restored without simulating, or — in precision mode — after the
	// point's sequential run. Points that error are not reported.
	OnPoint func(point int, pr *PointResult)
}

// AppendPoint appends the named measure of pr, at abscissa x, to the
// series — the same cell layout the registered figure runners emit, so
// external figure assembly (internal/scenario) stays byte-compatible with
// theirs.
func AppendPoint(s *Series, x float64, name string, pr *PointResult) {
	appendPoint(s, x, name, pr)
}

// RunSweep executes a set of sweep points under the given configuration,
// sharing one flattened worker pool across all points exactly like the
// registered figure runners (precision targets switch the points to
// sequential adaptive runs instead). Results are bit-identical at every
// worker count, points already present in cfg.Checkpoint are restored
// without simulating, and freshly computed points are persisted before
// RunSweep returns — so an interrupted sweep resumed with the same
// checkpoint loses none of its finished work.
//
// The returned slice is parallel to points; on error, entries of points
// that completed (and were committed) are still populated, the rest are
// nil.
func RunSweep(ctx context.Context, cfg Config, points []PointSpec, hooks SweepHooks) ([]*PointResult, error) {
	cfg = cfg.withDefaults()
	sw := newSweep(cfg)
	sw.hooks = hooks
	prs := make([]*PointResult, len(points))
	for i := range points {
		p := &points[i]
		sw.add(&prs[i], p.Label, cfg, p.Params, p.Until, p.SeedOffset, p.Vars)
	}
	err := sw.run(ctx)
	return prs, err
}
