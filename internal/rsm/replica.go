package rsm

import (
	"fmt"
	"sort"

	"ituaval/internal/groupcomm"
	"ituaval/internal/rng"
)

// node is one live replica process of the measured application.
type node struct {
	slot int
	host int
	// behavior is nil for an honest replica; otherwise the Byzantine script
	// the corrupted replica runs (the groupcomm repertoire).
	behavior groupcomm.Behavior
	// convicted marks a replica whose group/IDS conviction is still
	// awaiting its management response (blocked on manager quorum). The
	// model counts it as a running, non-Byzantine member until the kill
	// lands — conviction neutralizes the corruption — so the live group
	// keeps it as a member with its Byzantine script masked (see convict).
	convicted bool

	// Per-attempt protocol state of an honest replica.
	bracha    *groupcomm.Bracha
	probe     uint64
	attempt   uint8
	expected  string
	leader    groupcomm.ProcessID
	index     groupcomm.ProcessID // this node's index within the attempt group
	inited    bool
	responded bool
}

// ProbeOutcome classifies one client probe of the live service.
type ProbeOutcome int

const (
	// ProbeCorrect: the client certified the expected value — at least
	// ⌈(n+1)/2⌉ members answered it.
	ProbeCorrect ProbeOutcome = iota
	// ProbeWrong: the client certified a value different from the expected
	// one — a Byzantine service failure (unreliability event).
	ProbeWrong
	// ProbeUnavailable: no value reached the response threshold within the
	// retry budget.
	ProbeUnavailable
)

func (o ProbeOutcome) String() string {
	switch o {
	case ProbeCorrect:
		return "correct"
	case ProbeWrong:
		return "wrong"
	case ProbeUnavailable:
		return "unavailable"
	default:
		return fmt.Sprintf("ProbeOutcome(%d)", int(o))
	}
}

// clusterSpec is the slice of Spec the cluster needs.
type clusterSpec struct {
	probeAttempts int     // extra retry attempts beyond the rotation minimum
	probeBatches  int     // transport batches per attempt
	backoff       float64 // idle time between attempts, hours
	fairAdversary bool
	behavior      func(slot int, rs *rng.Stream) groupcomm.Behavior
}

// cluster is the live replica group of the measured application plus the
// synthetic client. The fault injector mutates it through hook calls; the
// client probes it through the transport.
type cluster struct {
	rs    *rng.Stream
	tr    *Transport
	spec  clusterSpec
	nodes map[int]*node // by slot
	probe uint64
}

func newCluster(rs *rng.Stream, tr *Transport, spec clusterSpec) *cluster {
	if spec.probeBatches <= 0 {
		spec.probeBatches = 4096
	}
	if spec.behavior == nil {
		spec.behavior = func(int, *rng.Stream) groupcomm.Behavior {
			// Collude is the default corruption repertoire: the worst-case
			// adversary whose live effect matches the model's one-third
			// failure predicate exactly (see DESIGN.md, "Live validation").
			return groupcomm.Collude{Value: "byz"}
		}
	}
	return &cluster{rs: rs, tr: tr, spec: spec, nodes: make(map[int]*node)}
}

// Lifecycle hooks, driven by inject.Hooks.

func (c *cluster) start(slot, host int) {
	c.nodes[slot] = &node{slot: slot, host: host}
	c.tr.Register(NodeID(slot), host)
}

func (c *cluster) corrupt(slot int) {
	if n := c.nodes[slot]; n != nil {
		n.behavior = c.spec.behavior(slot, c.rs)
	}
}

// convict handles a group/IDS conviction whose management response may
// still be pending: the group has identified the traitor, so its Byzantine
// script is masked — divergent agreement traffic ignored, answers forced
// correct — which is exactly how the model accounts for it (removed from
// undet, still counted running) until the kill lands. A convicted replica
// cannot be re-attacked (the model's attack guard), so masking is stable.
func (c *cluster) convict(slot int) {
	if n := c.nodes[slot]; n != nil {
		n.convicted = true
		n.behavior = nil
	}
}

func (c *cluster) kill(slot int) {
	delete(c.nodes, slot)
	c.tr.Unregister(NodeID(slot))
}

// members returns the probe group: the placed replicas in slot order.
func (c *cluster) members() []*node {
	out := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].slot < out[j].slot })
	return out
}

// Probe issues one client request against the current group and reports the
// outcome. Each attempt rotates the leader and runs the full agreement
// protocol over the transport; retries are bounded (rotation covers f+1
// distinct leaders, so an honest leader is reached whenever the group is
// within its fault threshold) with idle backoff between attempts.
func (c *cluster) Probe() ProbeOutcome {
	c.probe++
	members := c.members()
	n := len(members)
	if n == 0 {
		return ProbeUnavailable
	}
	f := groupcomm.MaxTolerance(n)
	attempts := f + 1 + c.spec.probeAttempts
	expected := fmt.Sprintf("v%d", c.probe)
	for at := 0; at < attempts; at++ {
		if at > 0 {
			c.tr.AdvanceIdle(float64(at) * 4 * c.tr.latencyMean) // retry backoff
		}
		leader := members[at%n]
		if outcome, decided := c.attempt(members, leader, uint8(at), expected, n, f); decided {
			return outcome
		}
	}
	return ProbeUnavailable
}

// attempt runs one leader-rotation attempt. decided = false means the
// attempt was inconclusive (no value certified before the transport went
// quiet or the batch budget ran out) and the caller should rotate.
func (c *cluster) attempt(members []*node, leader *node, at uint8, expected string, n, f int) (ProbeOutcome, bool) {
	group := make([]groupcomm.ProcessID, n)
	bySlot := make(map[NodeID]*node, n)
	for i, m := range members {
		group[i] = groupcomm.ProcessID(i)
		bySlot[NodeID(m.slot)] = m
		m.index = groupcomm.ProcessID(i)
		m.probe, m.attempt = c.probe, at
		if m.behavior == nil {
			m.bracha = groupcomm.NewBracha(m.index, n, f)
			m.expected = expected
			m.leader = leader.index
			m.inited, m.responded = false, false
		}
	}

	// The adversary speaks first: corrupted members inject their script's
	// messages for the early protocol rounds up front, with the scheduling
	// privilege (zero latency) unless FairAdversary revokes it.
	for _, m := range members {
		if m.behavior == nil {
			continue
		}
		for round := 0; round <= 6; round++ {
			for _, gm := range m.behavior.Act(m.index, group, round, nil) {
				gm.From = m.index // authenticated channels
				if int(gm.To) < n {
					c.sendWire(m, members[gm.To], gm, !c.spec.fairAdversary)
				}
			}
		}
	}

	// The client multicasts its request.
	req := WireMsg{Kind: KindRequest, Probe: c.probe, Attempt: at, From: int32(ClientID), Value: expected}
	for _, m := range members {
		c.tr.Send(ClientID, NodeID(m.slot), req.Encode(), false)
	}

	// Event loop: drain the transport, dispatch, tally responses.
	responses := make(map[int]string, n) // responder slot → value
	threshold := n/2 + 1                 // ⌈(n+1)/2⌉
	for batch := 0; batch < c.spec.probeBatches && !c.tr.Quiet(); batch++ {
		for _, pkt := range c.tr.DeliverBatch() {
			wm, err := Decode(pkt.Payload)
			if err != nil || wm.Probe != c.probe || wm.Attempt != at {
				continue // stale traffic from an earlier attempt, or garbage
			}
			if pkt.To == ClientID {
				if wm.Kind == KindResponse && bySlot[pkt.From] != nil {
					if _, dup := responses[int(pkt.From)]; !dup {
						responses[int(pkt.From)] = wm.Value
					}
				}
				continue
			}
			m := bySlot[pkt.To]
			if m == nil {
				continue
			}
			if m.behavior != nil {
				c.dispatchByzantine(m, wm)
				continue
			}
			// Authenticated channels: the sender identity is the transport
			// source, never the (forgeable) wire From field.
			var sender groupcomm.ProcessID
			switch {
			case pkt.From == ClientID:
				if wm.Kind != KindRequest {
					continue
				}
			case bySlot[pkt.From] != nil:
				sender = bySlot[pkt.From].index
				if wm.Kind == KindRequest {
					continue // only the client issues requests
				}
			default:
				continue
			}
			c.dispatchHonest(m, members, wm, sender)
		}
		counts := make(map[string]int)
		for _, v := range responses {
			counts[v]++
		}
		for v, k := range counts {
			if k >= threshold {
				if v == expected {
					return ProbeCorrect, true
				}
				return ProbeWrong, true
			}
		}
	}
	return ProbeUnavailable, false
}

// dispatchHonest feeds one message to an honest replica's protocol state.
// sender is the authenticated group index of the source (ignored for
// client requests).
func (c *cluster) dispatchHonest(m *node, members []*node, wm WireMsg, sender groupcomm.ProcessID) {
	switch wm.Kind {
	case KindRequest:
		// External validity anchor: the replica now knows the client's
		// value. The leader orders it; everyone else waits for the INIT.
		if m.index == m.leader && !m.inited {
			m.inited = true
			init := groupcomm.Message{From: m.index, Type: groupcomm.MsgInit, Value: m.expected}
			for _, to := range members {
				c.sendWire(m, to, init, false)
			}
		}
	case KindInit, KindEcho, KindReady:
		gm := groupcomm.Message{From: sender, To: m.index, Value: wm.Value}
		switch wm.Kind {
		case KindInit:
			// External validity: only the designated leader's INIT of the
			// client's own value enters the protocol — a corrupt leader
			// cannot get honest echoes for a forged value.
			if wm.Value != m.expected {
				return
			}
			gm.Type = groupcomm.MsgInit
		case KindEcho:
			gm.Type = groupcomm.MsgEcho
		case KindReady:
			gm.Type = groupcomm.MsgReady
		}
		for _, out := range m.bracha.Step(gm, m.leader) {
			for _, to := range members {
				c.sendWire(m, to, out, false)
			}
		}
		if v, ok := m.bracha.Delivered(); ok && !m.responded {
			m.responded = true
			resp := WireMsg{Kind: KindResponse, Probe: m.probe, Attempt: m.attempt, From: int32(m.slot), Value: v}
			c.tr.Send(NodeID(m.slot), ClientID, resp.Encode(), false)
		}
	}
}

// dispatchByzantine handles traffic to a corrupted replica. Its agreement
// messages were injected up front; here it only answers the client, per its
// behavior's Responder extension (silent if the behavior has none).
func (c *cluster) dispatchByzantine(m *node, wm WireMsg) {
	if wm.Kind != KindRequest {
		return
	}
	r, ok := m.behavior.(groupcomm.Responder)
	if !ok {
		return
	}
	v, answer := r.Respond(wm.Probe)
	if !answer {
		return
	}
	resp := WireMsg{Kind: KindResponse, Probe: wm.Probe, Attempt: wm.Attempt, From: int32(m.slot), Value: v}
	c.tr.Send(NodeID(m.slot), ClientID, resp.Encode(), !c.spec.fairAdversary)
}

// sendWire encodes a groupcomm message from m to the member to and sends it.
func (c *cluster) sendWire(m *node, to *node, gm groupcomm.Message, urgent bool) {
	var kind MsgKind
	switch gm.Type {
	case groupcomm.MsgInit:
		kind = KindInit
	case groupcomm.MsgEcho:
		kind = KindEcho
	case groupcomm.MsgReady:
		kind = KindReady
	default:
		return
	}
	wm := WireMsg{Kind: kind, Probe: c.probe, Attempt: m.attempt, From: int32(gm.From), Value: gm.Value}
	c.tr.Send(NodeID(m.slot), NodeID(to.slot), wm.Encode(), urgent)
}
