package rsm

import (
	"strings"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	msgs := []WireMsg{
		{Kind: KindRequest, Probe: 1, Attempt: 0, From: int32(ClientID), Value: "v1"},
		{Kind: KindInit, Probe: 42, Attempt: 3, From: 0, Value: ""},
		{Kind: KindEcho, Probe: 1 << 60, Attempt: 255, From: 1 << 20, Value: "x"},
		{Kind: KindReady, Probe: 0, Attempt: 1, From: -1, Value: strings.Repeat("a", MaxValueLen)},
		{Kind: KindResponse, Probe: 7, Attempt: 2, From: 6, Value: "byz"},
	}
	for _, m := range msgs {
		got, err := Decode(m.Encode())
		if err != nil {
			t.Fatalf("Decode(%v.Encode()): %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip: got %+v, want %+v", got, m)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":     nil,
		"short":     {1, 2, 3},
		"bad kind":  append([]byte{0}, make([]byte, headerLen-1)...),
		"kind high": append([]byte{99}, make([]byte, headerLen-1)...),
		"truncated": (WireMsg{Kind: KindEcho, Value: "hello"}).Encode()[:headerLen+2],
		"trailing":  append((WireMsg{Kind: KindEcho, Value: "h"}).Encode(), 0),
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: Decode accepted %v", name, b)
		}
	}
	// Oversized length prefix.
	b := (WireMsg{Kind: KindEcho, Value: "h"}).Encode()
	b[14], b[15] = 0xff, 0xff
	if _, err := Decode(b); err == nil {
		t.Error("oversized length prefix accepted")
	}
}

// FuzzWireMsg asserts Decode never panics and that every accepted payload
// re-encodes to the identical bytes (a parsed message is canonical).
func FuzzWireMsg(f *testing.F) {
	f.Add([]byte{})
	f.Add((WireMsg{Kind: KindRequest, Probe: 9, From: int32(ClientID), Value: "v9"}).Encode())
	f.Add((WireMsg{Kind: KindResponse, Probe: 1, Attempt: 4, From: 3, Value: "byz"}).Encode())
	f.Add(append([]byte{5}, make([]byte, headerLen)...))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return
		}
		if got := m.Encode(); string(got) != string(b) {
			t.Fatalf("accepted payload not canonical: % x -> %+v -> % x", b, m, got)
		}
	})
}
