package rsm

import (
	"testing"

	"ituaval/internal/groupcomm"
	"ituaval/internal/rng"
)

// testCluster builds a cluster of n replicas (slot i on host i) and applies
// behaviors to the given slots. A nil behavior map means all honest.
func testCluster(t *testing.T, n int, behaviors map[int]groupcomm.Behavior, spec clusterSpec) (*cluster, *Transport) {
	t.Helper()
	tr := NewTransport(rng.New(101), 1e-6, 0)
	if spec.behavior == nil && behaviors != nil {
		spec.behavior = func(slot int, _ *rng.Stream) groupcomm.Behavior { return behaviors[slot] }
	}
	cl := newCluster(rng.New(202), tr, spec)
	for i := 0; i < n; i++ {
		cl.start(i, i)
	}
	for slot := range behaviors {
		cl.corrupt(slot)
	}
	return cl, tr
}

func TestProbeHonestGroup(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		cl, _ := testCluster(t, n, nil, clusterSpec{})
		if got := cl.Probe(); got != ProbeCorrect {
			t.Fatalf("n=%d honest: probe = %v", n, got)
		}
	}
}

// At or below the one-third threshold the probe stays correct; one past it
// the colluders force a certified wrong answer — the live realization of
// the model's failure predicate (3·undet ≥ running).
func TestProbeColludeThreshold(t *testing.T) {
	cases := []struct {
		n, bad int
		want   ProbeOutcome
	}{
		{4, 1, ProbeCorrect}, // f=1, u=1: safe
		{7, 2, ProbeCorrect}, // f=2, u=2: safe
		{4, 2, ProbeWrong},   // u = f+1: forged value certified
		{7, 3, ProbeWrong},   // u = f+1
		{3, 1, ProbeWrong},   // f=0: a single colluder owns the group
		{2, 1, ProbeWrong},   // f=0
		{1, 1, ProbeWrong},   // the last replica is corrupt
		{4, 4, ProbeWrong},   // everything corrupt
	}
	for _, tc := range cases {
		behaviors := map[int]groupcomm.Behavior{}
		for i := 0; i < tc.bad; i++ {
			behaviors[tc.n-1-i] = groupcomm.Collude{Value: "byz"}
		}
		cl, _ := testCluster(t, tc.n, behaviors, clusterSpec{})
		if got := cl.Probe(); got != tc.want {
			t.Fatalf("n=%d bad=%d: probe = %v, want %v", tc.n, tc.bad, got, tc.want)
		}
	}
}

// Silent corruption is weaker than the model's worst case: below the
// response threshold the service still answers, at it the service goes
// unavailable (never wrong).
func TestProbeSilentMajority(t *testing.T) {
	behaviors := map[int]groupcomm.Behavior{2: groupcomm.Silent{}, 3: groupcomm.Silent{}}
	cl, _ := testCluster(t, 4, behaviors, clusterSpec{})
	// 2 honest of 4: threshold ⌈5/2⌉ = 3 unreachable.
	if got := cl.Probe(); got != ProbeUnavailable {
		t.Fatalf("n=4 two silent: probe = %v, want unavailable", got)
	}
	behaviors = map[int]groupcomm.Behavior{3: groupcomm.Silent{}}
	cl, _ = testCluster(t, 4, behaviors, clusterSpec{})
	// 3 honest of 4 ≥ 3: still available.
	if got := cl.Probe(); got != ProbeCorrect {
		t.Fatalf("n=4 one silent: probe = %v, want correct", got)
	}
}

// A corrupt (silent) leader cannot stall the service: rotation reaches an
// honest leader within the bounded retries.
func TestProbeLeaderRotation(t *testing.T) {
	behaviors := map[int]groupcomm.Behavior{0: groupcomm.Silent{}}
	cl, _ := testCluster(t, 4, behaviors, clusterSpec{})
	if got := cl.Probe(); got != ProbeCorrect {
		t.Fatalf("silent leader: probe = %v, want correct after rotation", got)
	}
}

// Conviction masks a traitor's Byzantine script while the management
// response is pending: the member stays in the group but behaves correctly,
// mirroring the model's accounting (conviction removes it from undet but
// not from running).
func TestProbeConvictionMasks(t *testing.T) {
	behaviors := map[int]groupcomm.Behavior{3: groupcomm.Collude{Value: "byz"}, 2: groupcomm.Collude{Value: "byz"}}
	cl, _ := testCluster(t, 4, behaviors, clusterSpec{})
	// u = 2 = f+1: forged answer certified.
	if got := cl.Probe(); got != ProbeWrong {
		t.Fatalf("before conviction: probe = %v, want wrong", got)
	}
	cl.convict(3) // n=4, u=1 ≤ f: safe again
	if got := cl.Probe(); got != ProbeCorrect {
		t.Fatalf("after conviction: probe = %v, want correct", got)
	}
	cl.kill(3) // the response lands: group {0,1,2}, u=1 ≥ f+1=1 → wrong
	if got := cl.Probe(); got != ProbeWrong {
		t.Fatalf("after kill: probe = %v, want wrong", got)
	}
	cl.convict(2)
	cl.kill(2)
	cl.kill(0)
	cl.kill(1)
	if got := cl.Probe(); got != ProbeUnavailable {
		t.Fatalf("empty group: probe = %v, want unavailable", got)
	}
}

// A partition that splits the group below its echo quorum makes the probe
// fail cleanly (bounded, classified) and heal cleanly.
func TestProbePartition(t *testing.T) {
	cl, tr := testCluster(t, 4, nil, clusterSpec{})
	tr.SetPartition(func(a, b int) bool { return (a < 2) != (b < 2) }) // 2|2 split
	if got := cl.Probe(); got != ProbeUnavailable {
		t.Fatalf("partitioned: probe = %v, want unavailable", got)
	}
	tr.SetPartition(nil)
	if got := cl.Probe(); got != ProbeCorrect {
		t.Fatalf("healed: probe = %v, want correct", got)
	}
}

// Heavy loss degrades to unavailability, never to a hang or a wrong answer.
func TestProbeHeavyLoss(t *testing.T) {
	tr := NewTransport(rng.New(7), 1e-6, 0.95)
	cl := newCluster(rng.New(8), tr, clusterSpec{})
	for i := 0; i < 4; i++ {
		cl.start(i, i)
	}
	for i := 0; i < 20; i++ {
		if got := cl.Probe(); got == ProbeWrong {
			t.Fatalf("loss produced a wrong answer on probe %d", i)
		}
	}
}

// The FairAdversary mode revokes the colluders' scheduling privilege; at
// the threshold they still win (READY amplification needs no scheduling
// luck), which pins down that the attack is quorum arithmetic, not timing.
func TestProbeFairAdversaryStillForges(t *testing.T) {
	behaviors := map[int]groupcomm.Behavior{2: groupcomm.Collude{Value: "byz"}, 3: groupcomm.Collude{Value: "byz"}}
	cl, _ := testCluster(t, 4, behaviors, clusterSpec{fairAdversary: true})
	if got := cl.Probe(); got != ProbeWrong {
		t.Fatalf("fair adversary at u=f+1: probe = %v, want wrong", got)
	}
}
