package rsm

import (
	"reflect"
	"testing"

	"ituaval/internal/rng"
)

func drain(t *Transport) []Packet {
	var out []Packet
	for !t.Quiet() {
		out = append(out, t.DeliverBatch()...)
	}
	return out
}

func TestTransportDeterministicDelivery(t *testing.T) {
	mk := func(seed uint64) []Packet {
		tr := NewTransport(rng.New(seed), 1e-6, 0)
		for i := 0; i < 4; i++ {
			tr.Register(NodeID(i), i/2)
		}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				tr.Send(NodeID(i), NodeID(j), []byte{byte(i), byte(j)}, false)
			}
		}
		return drain(tr)
	}
	a, b := mk(5), mk(5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, different delivery sequences")
	}
	if len(a) != 16 {
		t.Fatalf("delivered %d of 16", len(a))
	}
	// A different seed jitters latencies differently: order may change but
	// nothing is lost.
	c := mk(6)
	if len(c) != 16 {
		t.Fatalf("seed 6: delivered %d of 16", len(c))
	}
}

func TestTransportUrgentBeatsLatency(t *testing.T) {
	tr := NewTransport(rng.New(1), 1e-6, 0)
	tr.Register(0, 0)
	tr.Register(1, 1)
	tr.Send(0, 1, []byte("slow"), false)
	tr.Send(1, 0, []byte("fast"), true)
	first := tr.DeliverBatch()
	if len(first) != 1 || string(first[0].Payload) != "fast" {
		t.Fatalf("urgent packet not delivered first: %v", first)
	}
}

func TestTransportExclusionAndPartition(t *testing.T) {
	tr := NewTransport(rng.New(2), 1e-6, 0)
	for i := 0; i < 4; i++ {
		tr.Register(NodeID(i), i) // one host per node
	}
	// In-flight traffic to an excluded host is dropped at delivery time.
	tr.Send(0, 1, []byte("x"), false)
	tr.ExcludeHost(1)
	if got := drain(tr); len(got) != 0 {
		t.Fatalf("delivered to excluded host: %v", got)
	}
	// The excluded node cannot send either, but the client still can be
	// reached by live nodes.
	tr.Send(1, 2, []byte("y"), false)
	tr.Send(2, ClientID, []byte("z"), false)
	got := drain(tr)
	if len(got) != 1 || string(got[0].Payload) != "z" {
		t.Fatalf("exclusion filtering wrong: %v", got)
	}

	// Partition hosts {0} from {2,3}; client traffic is unaffected.
	tr.SetPartition(func(a, b int) bool { return (a == 0) != (b == 0) })
	tr.Send(0, 2, []byte("cut"), false)
	tr.Send(2, 3, []byte("ok"), false)
	tr.Send(0, ClientID, []byte("client"), false)
	var vals []string
	for _, p := range drain(tr) {
		vals = append(vals, string(p.Payload))
	}
	if !reflect.DeepEqual(vals, []string{"ok", "client"}) && !reflect.DeepEqual(vals, []string{"client", "ok"}) {
		t.Fatalf("partition filtering wrong: %v", vals)
	}
	// Heal: traffic flows again.
	tr.SetPartition(nil)
	tr.Send(0, 2, []byte("healed"), false)
	if got := drain(tr); len(got) != 1 || string(got[0].Payload) != "healed" {
		t.Fatalf("heal failed: %v", got)
	}
}

func TestTransportLoss(t *testing.T) {
	tr := NewTransport(rng.New(3), 1e-6, 1) // every replica packet lost
	tr.Register(0, 0)
	tr.Register(1, 1)
	tr.Send(0, 1, []byte("gone"), false)
	tr.Send(0, ClientID, []byte("kept"), false) // client channel is lossless
	got := drain(tr)
	if len(got) != 1 || string(got[0].Payload) != "kept" {
		t.Fatalf("loss filtering wrong: %v", got)
	}
}
