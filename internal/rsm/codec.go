package rsm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MsgKind is the wire-level message type of the replicated service: the
// client request/response pair plus the three Bracha agreement phases.
type MsgKind uint8

const (
	// KindRequest is a client request carrying the value to be ordered.
	KindRequest MsgKind = iota + 1
	// KindInit is the leader's Bracha INIT proposing an order.
	KindInit
	// KindEcho is the Bracha witness phase.
	KindEcho
	// KindReady is the Bracha delivery-commitment phase.
	KindReady
	// KindResponse is a replica's answer to the client.
	KindResponse
)

func (k MsgKind) String() string {
	switch k {
	case KindRequest:
		return "REQUEST"
	case KindInit:
		return "INIT"
	case KindEcho:
		return "ECHO"
	case KindReady:
		return "READY"
	case KindResponse:
		return "RESPONSE"
	default:
		return fmt.Sprintf("MsgKind(%d)", uint8(k))
	}
}

// MaxValueLen bounds the encoded value: requests are short ordered commands,
// and the bound keeps a malformed length prefix from allocating unbounded
// memory in Decode.
const MaxValueLen = 1 << 12

// WireMsg is one protocol message as carried by the transport. From is the
// sender's replica slot, or ClientID for the client.
type WireMsg struct {
	Kind    MsgKind
	Probe   uint64 // client probe (request) sequence number
	Attempt uint8  // leader-rotation attempt within the probe
	From    int32
	Value   string
}

// wire layout: kind(1) probe(8) attempt(1) from(4) vlen(2) value(vlen)
const headerLen = 1 + 8 + 1 + 4 + 2

// Encode serializes m. It panics if the value exceeds MaxValueLen (a caller
// bug: the service never orders values that long).
func (m WireMsg) Encode() []byte {
	if len(m.Value) > MaxValueLen {
		panic(fmt.Sprintf("rsm: value length %d exceeds MaxValueLen", len(m.Value)))
	}
	b := make([]byte, headerLen+len(m.Value))
	b[0] = byte(m.Kind)
	binary.BigEndian.PutUint64(b[1:], m.Probe)
	b[9] = m.Attempt
	binary.BigEndian.PutUint32(b[10:], uint32(m.From))
	binary.BigEndian.PutUint16(b[14:], uint16(len(m.Value)))
	copy(b[headerLen:], m.Value)
	return b
}

// ErrBadMessage reports a malformed wire message.
var ErrBadMessage = errors.New("rsm: malformed wire message")

// Decode parses one wire message. Every field is bounds-checked: a
// truncated, oversized, or unknown-kind payload yields ErrBadMessage, never
// a panic — the fuzz target FuzzWireMsg enforces this.
func Decode(b []byte) (WireMsg, error) {
	if len(b) < headerLen {
		return WireMsg{}, fmt.Errorf("%w: %d bytes, want >= %d", ErrBadMessage, len(b), headerLen)
	}
	k := MsgKind(b[0])
	if k < KindRequest || k > KindResponse {
		return WireMsg{}, fmt.Errorf("%w: unknown kind %d", ErrBadMessage, b[0])
	}
	vlen := int(binary.BigEndian.Uint16(b[14:]))
	if vlen > MaxValueLen {
		return WireMsg{}, fmt.Errorf("%w: value length %d exceeds %d", ErrBadMessage, vlen, MaxValueLen)
	}
	if len(b) != headerLen+vlen {
		return WireMsg{}, fmt.Errorf("%w: %d bytes, want %d", ErrBadMessage, len(b), headerLen+vlen)
	}
	return WireMsg{
		Kind:    k,
		Probe:   binary.BigEndian.Uint64(b[1:]),
		Attempt: b[9],
		From:    int32(binary.BigEndian.Uint32(b[10:])),
		Value:   string(b[headerLen:]),
	}, nil
}
