// Package rsm is a live message-passing replicated service — the executable
// counterpart of the ITUA model. Replicas of the measured application run
// Bracha's reliable broadcast (internal/groupcomm) over an in-process
// discrete-event transport with seeded latency, loss, exclusion, and
// partition support, while the fault injector (internal/rsm/inject) drives
// the model's stochastic attack process against them: corruptions swap a
// replica's logic for a Byzantine behavior script, convictions quarantine
// it, exclusions cut its host off the transport, and recoveries bring fresh
// replicas up. A synthetic client probes the service after every injected
// event; a probe fails when fewer than ⌈(n+1)/2⌉ members answer with one
// value (unavailability) and is Byzantine when a wrong value reaches that
// threshold (unreliability). The resulting empirical measures estimate the
// same quantities as the SAN model, the direct simulator, and the
// uniformization solver — the fourth arm of integrity.CrossCheck.
package rsm

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"ituaval/internal/core"
	"ituaval/internal/groupcomm"
	"ituaval/internal/rng"
	"ituaval/internal/rsm/inject"
	"ituaval/internal/stats"
)

// Spec configures one live-validation run.
type Spec struct {
	// Params is the ITUA configuration (topology, rates, policy).
	Params core.Params
	// T is the study horizon in hours (default 6, the paper's interval).
	T float64
	// Reps is the number of independent replications (default 200).
	Reps int
	// Seed is the root seed; replication i derives stream Seed→i.
	Seed uint64
	// Workers bounds parallelism (0 = GOMAXPROCS). Results are aggregated
	// in replication order, so the worker count never changes the output.
	Workers int

	// MaxEvents bounds injected events per replication (default 1<<20);
	// exceeding it records the replication as failed ("event-budget"),
	// mirroring the simulation engine's firing budget.
	MaxEvents int
	// RepDeadline bounds one replication's wall-clock time (default 30s);
	// exceeding it records a "deadline" failure instead of hanging the run.
	RepDeadline time.Duration
	// MaxFailureFrac is the tolerated fraction of failed replications
	// before the whole run errors out (default 0.05).
	MaxFailureFrac float64

	// ProbeAttempts adds retry attempts on top of the guaranteed-rotation
	// minimum of f+1 per probe.
	ProbeAttempts int
	// ProbeBatches bounds transport batches per attempt (default 4096).
	ProbeBatches int
	// LatencyMean is the mean one-way transport latency in hours (default
	// 1e-6; the transport clock is decoupled from the model clock, probes
	// are instantaneous in model time).
	LatencyMean float64
	// LossProb drops each replica-to-replica packet independently. Nonzero
	// loss makes the live service strictly weaker than the model's
	// reliable-channel assumption; use it for robustness testing, not
	// validation.
	LossProb float64
	// FairAdversary revokes the adversary's worst-case scheduling
	// privilege (zero-latency delivery). Validation runs leave it false:
	// the model's failure predicate assumes the worst case.
	FairAdversary bool
	// Behavior maps a corrupted replica slot to its Byzantine script
	// (default: groupcomm.Collude, the worst-case adversary whose live
	// effect coincides with the model's one-third predicate). Weaker
	// behaviors (Silent, RandomLiar) yield live measures at or below the
	// model's — the model is then a bound, not an equality.
	Behavior func(slot int, rs *rng.Stream) groupcomm.Behavior
}

func (s *Spec) fill() {
	if s.T <= 0 {
		s.T = 6
	}
	if s.Reps <= 0 {
		s.Reps = 200
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Workers <= 0 {
		s.Workers = runtime.GOMAXPROCS(0)
	}
	if s.MaxEvents <= 0 {
		s.MaxEvents = 1 << 20
	}
	if s.RepDeadline <= 0 {
		s.RepDeadline = 30 * time.Second
	}
	if s.MaxFailureFrac <= 0 {
		s.MaxFailureFrac = 0.05
	}
	if s.ProbeBatches <= 0 {
		s.ProbeBatches = 4096
	}
	if s.LatencyMean <= 0 {
		s.LatencyMean = 1e-6
	}
}

// Result aggregates a run's live and oracle measures.
type Result struct {
	Reps   int // replications contributing measures
	Failed int
	// Failures counts failed replications by kind ("deadline",
	// "event-budget", "panic"), the PR-1 watchdog taxonomy: failures are
	// recorded and bounded, never hangs.
	Failures map[string]int

	Probes int64 // client probes issued across all replications
	// Divergences counts probe outcomes disagreeing with the model oracle,
	// plus final unreliability latches disagreeing with the model's
	// Byzantine flag — except when that flag latched while a partition
	// isolated the group (inject.ByzantineBlocked), where the model is a
	// documented upper bound rather than an equality.
	Divergences int64

	// Live measures: empirical unavailability (fraction of the interval
	// the service failed the response threshold), unreliability (a wrong
	// answer was certified by the horizon), and the injector's
	// excluded-domain fraction at the horizon.
	Unavail, Unrel, FracExcl stats.Accumulator

	// Oracle measures: the model's improper-service predicate evaluated on
	// the injector state over the same trajectories. Live and oracle means
	// coincide (up to Divergences) under the default adversary.
	PredUnavail, PredUnrel stats.Accumulator
}

type repOut struct {
	fail                string // failure kind, "" = ok
	unavail, fracExcl   float64
	wrong               bool
	predUnavail         float64
	predWrong           bool
	probes, divergences int64
}

// Run executes the live validation: Reps independent replications of the
// attack process against freshly booted replica groups, aggregated in
// replication order (deterministic for a fixed Seed regardless of Workers).
func Run(ctx context.Context, spec Spec) (*Result, error) {
	spec.fill()
	if err := spec.Params.Validate(); err != nil {
		return nil, fmt.Errorf("rsm: %w", err)
	}
	root := rng.New(spec.Seed)
	outs := make([]repOut, spec.Reps)
	reps := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < spec.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := range reps {
				outs[rep] = runRep(ctx, spec, root.Derive(uint64(rep)))
			}
		}()
	}
	for rep := 0; rep < spec.Reps; rep++ {
		reps <- rep
	}
	close(reps)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &Result{Failures: make(map[string]int)}
	for _, o := range outs {
		res.Probes += o.probes
		res.Divergences += o.divergences
		if o.fail != "" {
			res.Failed++
			res.Failures[o.fail]++
			continue
		}
		res.Reps++
		res.Unavail.Add(o.unavail)
		res.Unrel.Add(b01(o.wrong))
		res.FracExcl.Add(o.fracExcl)
		res.PredUnavail.Add(o.predUnavail)
		res.PredUnrel.Add(b01(o.predWrong))
	}
	if frac := float64(res.Failed) / float64(spec.Reps); frac > spec.MaxFailureFrac {
		return res, fmt.Errorf("rsm: %d of %d replications failed (%v), above the %.0f%% budget",
			res.Failed, spec.Reps, res.Failures, 100*spec.MaxFailureFrac)
	}
	return res, nil
}

func b01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// runRep boots one replica group, drives the attack process to the horizon,
// and probes the live service after every injected event. A panic, event
// budget, or wall deadline degrades to a recorded failure.
func runRep(ctx context.Context, spec Spec, stream *rng.Stream) (out repOut) {
	defer func() {
		if r := recover(); r != nil {
			out = repOut{fail: "panic"}
			_ = debug.Stack()
		}
	}()
	start := time.Now()

	tr := NewTransport(stream.RoleNamed("transport"), spec.LatencyMean, spec.LossProb)
	cl := newCluster(stream.RoleNamed("cluster"), tr, clusterSpec{
		probeAttempts: spec.ProbeAttempts,
		probeBatches:  spec.ProbeBatches,
		fairAdversary: spec.FairAdversary,
		behavior:      spec.Behavior,
	})
	proc, err := inject.New(spec.Params, stream.RoleNamed("inject"), inject.Hooks{
		StartReplica: func(a, slot, host int) {
			if a == 0 {
				cl.start(slot, host)
			}
		},
		CorruptReplica: func(a, slot int) {
			if a == 0 {
				cl.corrupt(slot)
			}
		},
		ConvictReplica: func(a, slot int) {
			if a == 0 {
				cl.convict(slot)
			}
		},
		KillReplica: func(a, slot int) {
			if a == 0 {
				cl.kill(slot)
			}
		},
		ExcludeHost: func(host int) { tr.ExcludeHost(host) },
		Partition: func(da, db int) {
			H := spec.Params.HostsPerDomain
			tr.SetPartition(func(from, to int) bool {
				fa, ta := from/H, to/H
				return (fa == da && ta == db) || (fa == db && ta == da)
			})
		},
		Heal: func() { tr.SetPartition(nil) },
	})
	if err != nil {
		panic(err) // Params were validated by Run; this is a programming error
	}

	T := spec.T
	now := 0.0
	unavailTime, predUnavailTime := 0.0, 0.0
	wrong := false

	// probe measures the post-event service status and checks it against
	// the model oracle.
	improper, predImproper := false, false
	probe := func() {
		outcome := cl.Probe()
		out.probes++
		improper = outcome != ProbeCorrect
		if outcome == ProbeWrong {
			wrong = true
		}
		predImproper = proc.Improper(0)
		if improper != predImproper {
			out.divergences++
		}
	}
	probe() // initial state

	for events := 0; ; events++ {
		if events >= spec.MaxEvents {
			return repOut{fail: "event-budget", probes: out.probes, divergences: out.divergences}
		}
		if events&63 == 0 {
			if time.Since(start) > spec.RepDeadline {
				return repOut{fail: "deadline", probes: out.probes, divergences: out.divergences}
			}
			if ctx.Err() != nil {
				return repOut{fail: "deadline", probes: out.probes, divergences: out.divergences}
			}
		}
		dt, fired := proc.Step(T - now)
		if improper {
			unavailTime += dt
		}
		if predImproper {
			predUnavailTime += dt
		}
		now += dt
		if !fired {
			break // horizon reached, or absorbed with nothing enabled
		}
		probe()
	}
	// The latch comparison excuses one environment-induced asymmetry: when
	// the model's Byzantine flag latched while the partition isolated the
	// group, the colluders could not actually reach the correct replicas to
	// certify a forged answer, so the live service staying reliable is the
	// model bounding the measurement from above, not a divergence.
	predWrong := proc.Byzantine(0)
	if wrong != predWrong && !(predWrong && proc.ByzantineBlocked(0)) {
		out.divergences++
	}
	out.unavail = unavailTime / T
	out.predUnavail = predUnavailTime / T
	out.wrong = wrong
	out.predWrong = predWrong
	out.fracExcl = proc.FracDomainsExcluded()
	return out
}
