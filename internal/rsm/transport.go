package rsm

import (
	"container/heap"

	"ituaval/internal/rng"
)

// NodeID addresses one endpoint on the transport: a replica slot, or
// ClientID for the measuring client.
type NodeID int32

// ClientID is the synthetic client's address. It lives on no host, so host
// exclusion and partitions never cut it off — the client models the outside
// observer, reachable by assumption.
const ClientID NodeID = -1

// Packet is one delivered payload.
type Packet struct {
	From, To NodeID
	Payload  []byte
}

type event struct {
	at      float64 // virtual delivery time, hours
	seq     uint64  // tie-break: send order
	from    NodeID
	to      NodeID
	payload []byte
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Transport is an in-process loopback network for the replicated service: a
// discrete-event queue delivering packets in (time, sequence) order, with
// seeded per-link latency jitter, seeded loss, host exclusion, and
// partition support. All nondeterminism is drawn from the seeded stream, so
// runs are reproducible.
type Transport struct {
	rs          *rng.Stream
	latencyMean float64 // mean one-way latency, hours
	lossProb    float64

	now   float64
	seq   uint64
	queue eventHeap

	host     map[NodeID]int // registered endpoints → host index
	excluded map[int]bool
	// partition, when non-nil, severs the link when it returns true. It is
	// never consulted for the client (host -1 by convention of the caller).
	partition func(fromHost, toHost int) bool

	// Counters for tests and diagnostics.
	Sent, Dropped, Delivered int
}

// NewTransport builds an empty transport. latencyMean is the mean one-way
// delivery latency in hours (jittered uniformly over [0.5, 1.5)×mean);
// lossProb drops each replica-to-replica packet independently. Packets to
// or from the client are never lost: the measurement channel is assumed
// reliable so that loss perturbs the service, not the observer.
func NewTransport(rs *rng.Stream, latencyMean, lossProb float64) *Transport {
	return &Transport{
		rs:          rs,
		latencyMean: latencyMean,
		lossProb:    lossProb,
		host:        make(map[NodeID]int),
		excluded:    make(map[int]bool),
	}
}

// Register attaches node id on the given host. The client does not
// register; it is always reachable.
func (t *Transport) Register(id NodeID, host int) { t.host[id] = host }

// Unregister detaches a node; packets in flight to it are dropped at
// delivery time.
func (t *Transport) Unregister(id NodeID) { delete(t.host, id) }

// ExcludeHost severs every node on the host (the transport-level effect of
// the management layer's exclusion): packets from or to its nodes are
// dropped from now on, including those already in flight.
func (t *Transport) ExcludeHost(host int) { t.excluded[host] = true }

// SetPartition installs a link filter: packets whose (fromHost, toHost)
// pair the filter reports as severed are dropped. Nil heals all partitions.
func (t *Transport) SetPartition(f func(fromHost, toHost int) bool) { t.partition = f }

// Now returns the transport's virtual clock.
func (t *Transport) Now() float64 { return t.now }

// AdvanceIdle moves the virtual clock forward by dt without delivering
// anything — client backoff between retry attempts.
func (t *Transport) AdvanceIdle(dt float64) { t.now += dt }

// reachable reports whether a packet between the two endpoints survives
// exclusion and partition filtering. The client (not registered) has
// conventional host -1 and bypasses both.
func (t *Transport) reachable(from, to NodeID) bool {
	fh, fromReplica := t.host[from]
	th, toReplica := t.host[to]
	if from != ClientID && !fromReplica {
		return false // unregistered (killed) sender
	}
	if to != ClientID && !toReplica {
		return false
	}
	if fromReplica && t.excluded[fh] {
		return false
	}
	if toReplica && t.excluded[th] {
		return false
	}
	if t.partition != nil && fromReplica && toReplica && t.partition(fh, th) {
		return false
	}
	return true
}

// Send queues a packet. urgent packets are delivered at the current virtual
// time ahead of any latency-delayed traffic — the adversary's scheduling
// privilege under the worst-case network assumption (see Spec.FairAdversary
// for the alternative). Loss applies only to replica-to-replica packets.
func (t *Transport) Send(from, to NodeID, payload []byte, urgent bool) {
	t.Sent++
	if !t.reachable(from, to) {
		t.Dropped++
		return
	}
	if t.lossProb > 0 && from != ClientID && to != ClientID && t.rs.Bernoulli(t.lossProb) {
		t.Dropped++
		return
	}
	at := t.now
	if !urgent {
		at += t.latencyMean * (0.5 + t.rs.Float64())
	}
	t.seq++
	heap.Push(&t.queue, event{at: at, seq: t.seq, from: from, to: to, payload: payload})
}

// DeliverBatch advances the clock to the earliest in-flight delivery time
// and returns every packet due at that instant, in send order. Packets
// whose endpoints were excluded or unregistered after sending are dropped
// here, so a batch may come back empty while traffic remains in flight —
// poll Quiet, not the batch length, for termination.
func (t *Transport) DeliverBatch() []Packet {
	var out []Packet
	started := false
	for len(t.queue) > 0 {
		at := t.queue[0].at
		if started && at != t.now {
			break
		}
		e := heap.Pop(&t.queue).(event)
		t.now = e.at
		started = true
		if !t.reachable(e.from, e.to) {
			t.Dropped++
			continue
		}
		t.Delivered++
		out = append(out, Packet{From: e.from, To: e.to, Payload: e.payload})
	}
	return out
}

// Quiet reports whether no packets are in flight.
func (t *Transport) Quiet() bool { return len(t.queue) == 0 }
