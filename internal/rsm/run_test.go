package rsm

import (
	"context"
	"testing"
	"time"

	"ituaval/internal/core"
	"ituaval/internal/groupcomm"
	"ituaval/internal/rng"
)

func smallParams() core.Params {
	p := core.DefaultParams()
	p.NumDomains = 2
	p.HostsPerDomain = 1
	p.NumApps = 1
	p.RepsPerApp = 2
	return p
}

// The live probe must agree with the model's improper/Byzantine predicates
// event for event under the default (Collude) adversary: zero divergences,
// and the live measures identical to the oracle measures.
func TestRunMatchesOracle(t *testing.T) {
	for _, cfg := range []struct {
		name string
		mut  func(*core.Params)
	}{
		{"2x1 domain-exclusion", func(p *core.Params) {}},
		{"2x1 host-exclusion", func(p *core.Params) { p.Policy = core.HostExclusion }},
		{"2x2x7 reps", func(p *core.Params) { p.HostsPerDomain = 2; p.NumDomains = 4; p.RepsPerApp = 7 }},
	} {
		p := smallParams()
		cfg.mut(&p)
		res, err := Run(context.Background(), Spec{Params: p, T: 6, Reps: 80, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if res.Failed > 0 {
			t.Fatalf("%s: %d failed replications: %v", cfg.name, res.Failed, res.Failures)
		}
		if res.Divergences != 0 {
			t.Errorf("%s: %d probe divergences in %d probes", cfg.name, res.Divergences, res.Probes)
		}
		if got, want := res.Unavail.Mean(), res.PredUnavail.Mean(); got != want {
			t.Errorf("%s: live unavail %v != oracle %v", cfg.name, got, want)
		}
		if got, want := res.Unrel.Mean(), res.PredUnrel.Mean(); got != want {
			t.Errorf("%s: live unrel %v != oracle %v", cfg.name, got, want)
		}
		if res.Probes == 0 {
			t.Errorf("%s: no probes issued", cfg.name)
		}
	}
}

// Same seed → identical results, regardless of worker count.
func TestRunDeterministic(t *testing.T) {
	run := func(workers int) *Result {
		res, err := Run(context.Background(), Spec{Params: smallParams(), T: 6, Reps: 40, Seed: 11, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run(1), run(1), run(4)
	for name, pair := range map[string][2]float64{
		"unavail":  {a.Unavail.Mean(), b.Unavail.Mean()},
		"unrel":    {a.Unrel.Mean(), b.Unrel.Mean()},
		"excl":     {a.FracExcl.Mean(), b.FracExcl.Mean()},
		"workers4": {a.Unavail.Mean(), c.Unavail.Mean()},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s: %v != %v", name, pair[0], pair[1])
		}
	}
	if a.Probes != b.Probes || a.Probes != c.Probes {
		t.Errorf("probe counts differ: %d %d %d", a.Probes, b.Probes, c.Probes)
	}
}

// A non-default adversary (Silent) is weaker than the model's worst case:
// the live unreliability can only be at or below the oracle's.
func TestRunSilentAdversaryBoundedByModel(t *testing.T) {
	spec := Spec{
		Params: smallParams(), T: 6, Reps: 60, Seed: 13,
		Behavior: func(int, *rng.Stream) groupcomm.Behavior { return groupcomm.Silent{} },
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if live, oracle := res.Unrel.Mean(), res.PredUnrel.Mean(); live > oracle {
		t.Errorf("silent adversary beat the worst-case model: live %v > oracle %v", live, oracle)
	}
}

// Exhausting the event budget degrades to recorded failures, not a hang,
// and the failure fraction gate turns them into an error.
func TestRunEventBudgetClassified(t *testing.T) {
	spec := Spec{Params: smallParams(), T: 6, Reps: 10, Seed: 3, MaxEvents: 2, MaxFailureFrac: 1}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("budget exhaustion should degrade, not error: %v", err)
	}
	if res.Failures["event-budget"] == 0 {
		t.Fatalf("no event-budget failures recorded: %+v", res.Failures)
	}
	// With the default 5% gate the same run errors out.
	spec.MaxFailureFrac = 0
	if _, err := Run(context.Background(), spec); err == nil {
		t.Fatal("failure fraction above the budget did not error")
	}
}

// A cancelled context aborts the run promptly instead of hanging.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		Run(ctx, Spec{Params: smallParams(), T: 6, Reps: 5000, Seed: 5})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not return")
	}
}
