package rsm

import (
	"context"
	"testing"

	"ituaval/internal/rng"
)

// The Partition hook severs domain pairs through the same host→domain
// mapping runRep installs (host/HostsPerDomain). A probe blocked by the cut
// must fail cleanly, and a mid-run SetPartition(nil) must heal every link so
// the next probe succeeds — the live counterpart of env.partition_heal.
func TestPartitionDomainPairHealsMidRun(t *testing.T) {
	const H = 2 // hosts per domain: replicas on hosts 0 and 2 → domains 0 and 1
	tr := NewTransport(rng.New(101), 1e-6, 0)
	cl := newCluster(rng.New(202), tr, clusterSpec{})
	cl.start(0, 0)
	cl.start(1, 2)
	if got := cl.Probe(); got != ProbeCorrect {
		t.Fatalf("before partition: probe = %v, want correct", got)
	}
	da, db := 0, 1
	tr.SetPartition(func(from, to int) bool {
		fa, ta := from/H, to/H
		return (fa == da && ta == db) || (fa == db && ta == da)
	})
	// n=2 needs both echoes; the cut blocks them → quorum-blocked, not hung.
	if got := cl.Probe(); got != ProbeUnavailable {
		t.Fatalf("partitioned: probe = %v, want unavailable", got)
	}
	tr.SetPartition(nil)
	if got := cl.Probe(); got != ProbeCorrect {
		t.Fatalf("healed: probe = %v, want correct", got)
	}
}

// End-to-end: a Run with the full environment-fault vocabulary enabled —
// partitions, attack campaigns, and a bounded repair crew — completes with
// bounded failures, and every probe still agrees with the model oracle
// (whose improper predicate now includes partition blocking).
func TestRunWithEnvironmentFaults(t *testing.T) {
	p := smallParams()
	p.PartitionRate = 4
	p.PartitionHealRate = 2
	p.CampaignRate = 0.5
	p.CampaignSize = 2
	p.CampaignProb = 0.5
	p.RepairCrew = 1
	res, err := Run(context.Background(), Spec{Params: p, T: 6, Reps: 60, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed > 0 {
		t.Fatalf("%d failed replications: %v", res.Failed, res.Failures)
	}
	if res.Probes == 0 {
		t.Fatal("no probes issued")
	}
	if res.Divergences != 0 {
		t.Errorf("%d probe divergences in %d probes", res.Divergences, res.Probes)
	}
	if got, want := res.Unavail.Mean(), res.PredUnavail.Mean(); got != want {
		t.Errorf("live unavail %v != oracle %v", got, want)
	}
	// With onset rate 4/h against heal rate 2/h over 6h, the service spends
	// real time partitioned: the live unavailability must see it.
	if res.Unavail.Mean() == 0 {
		t.Error("partitions never made the live service unavailable")
	}
}

// With only partitions enabled (no attack process at all) the live measures
// reduce to pure partition downtime, and healing restores service within
// every replication — no divergences, no failures, nonzero but sub-one
// unavailability.
func TestRunPartitionOnly(t *testing.T) {
	p := smallParams()
	p.TotalAttackRate = 0 // no attacks: the only fault source is the cut
	p.PartitionRate = 2
	p.PartitionHealRate = 4
	res, err := Run(context.Background(), Spec{Params: p, T: 6, Reps: 40, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed > 0 {
		t.Fatalf("%d failed replications: %v", res.Failed, res.Failures)
	}
	if res.Divergences != 0 {
		t.Errorf("%d probe divergences in %d probes", res.Divergences, res.Probes)
	}
	u := res.Unavail.Mean()
	if u <= 0 || u >= 1 {
		t.Errorf("partition-only unavailability %v, want in (0,1)", u)
	}
	if res.Unrel.Mean() != 0 {
		t.Errorf("partitions caused Byzantine faults: unrel %v", res.Unrel.Mean())
	}
}
