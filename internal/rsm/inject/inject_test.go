package inject

import (
	"fmt"
	"testing"

	"ituaval/internal/core"
	"ituaval/internal/ituadirect"
	"ituaval/internal/rng"
	"ituaval/internal/stats"
)

func smallParams() core.Params {
	p := core.DefaultParams()
	p.NumDomains = 2
	p.HostsPerDomain = 1
	p.NumApps = 1
	p.RepsPerApp = 2
	return p
}

// mirror maintains the cluster's view of app 0 purely from hook calls, so
// the test can check that the hook protocol alone reconstructs the
// injector's state — the property the live cluster depends on.
type mirror struct {
	host      map[int]int
	corrupt   map[int]bool
	convicted map[int]bool
	trace     []string
}

func newMirror() *mirror {
	return &mirror{host: map[int]int{}, corrupt: map[int]bool{}, convicted: map[int]bool{}}
}

func (m *mirror) hooks() Hooks {
	return Hooks{
		StartReplica: func(a, slot, host int) {
			if a != 0 {
				return
			}
			m.host[slot] = host
			delete(m.corrupt, slot)
			delete(m.convicted, slot)
			m.trace = append(m.trace, fmt.Sprintf("start %d@%d", slot, host))
		},
		CorruptReplica: func(a, slot int) {
			if a != 0 {
				return
			}
			m.corrupt[slot] = true
			m.trace = append(m.trace, fmt.Sprintf("corrupt %d", slot))
		},
		ConvictReplica: func(a, slot int) {
			if a != 0 {
				return
			}
			delete(m.corrupt, slot)
			m.convicted[slot] = true
			m.trace = append(m.trace, fmt.Sprintf("convict %d", slot))
		},
		KillReplica: func(a, slot int) {
			if a != 0 {
				return
			}
			delete(m.host, slot)
			delete(m.corrupt, slot)
			delete(m.convicted, slot)
			m.trace = append(m.trace, fmt.Sprintf("kill %d", slot))
		},
		ExcludeHost: func(host int) {
			m.trace = append(m.trace, fmt.Sprintf("exclude host %d", host))
		},
	}
}

func (m *mirror) check(t *testing.T, s *Process) {
	t.Helper()
	members := s.Members(0)
	if len(members) != len(m.host) {
		t.Fatalf("mirror has %d members, injector %d", len(m.host), len(members))
	}
	undet := 0
	for _, mem := range members {
		if h, ok := m.host[mem.Slot]; !ok || h != mem.Host {
			t.Fatalf("slot %d: mirror host %d (ok=%v), injector host %d", mem.Slot, h, ok, mem.Host)
		}
		if m.corrupt[mem.Slot] != mem.Corrupt {
			t.Fatalf("slot %d: mirror corrupt %v, injector %v", mem.Slot, m.corrupt[mem.Slot], mem.Corrupt)
		}
		if m.convicted[mem.Slot] != mem.Convicted {
			t.Fatalf("slot %d: mirror convicted %v, injector %v", mem.Slot, m.convicted[mem.Slot], mem.Convicted)
		}
		if mem.Corrupt {
			undet++
		}
	}
	if len(members) != s.Running(0) {
		t.Fatalf("Members(0) has %d entries, Running(0) = %d", len(members), s.Running(0))
	}
	if undet != s.Undet(0) {
		t.Fatalf("%d corrupt members, Undet(0) = %d", undet, s.Undet(0))
	}
	if want := 3*s.Undet(0) >= s.Running(0); s.Improper(0) != want {
		t.Fatalf("Improper(0) = %v, predicate says %v", s.Improper(0), want)
	}
}

// The hook protocol must reconstruct the injector's member state exactly
// after every transition, across both exclusion policies.
func TestInjectHooksMirrorState(t *testing.T) {
	for _, policy := range []core.Policy{core.DomainExclusion, core.HostExclusion} {
		p := smallParams()
		p.Policy = policy
		p.NumDomains = 4
		p.HostsPerDomain = 2
		p.RepsPerApp = 4
		for seed := uint64(1); seed <= 20; seed++ {
			m := newMirror()
			s, err := New(p, rng.New(seed), m.hooks())
			if err != nil {
				t.Fatal(err)
			}
			m.check(t, s)
			now := 0.0
			for {
				dt, fired := s.Step(6 - now)
				now += dt
				if !fired {
					break
				}
				m.check(t, s)
			}
		}
	}
}

// Same seed → identical trajectory (hook trace and final measures).
func TestInjectDeterministic(t *testing.T) {
	run := func() (*mirror, *Process) {
		m := newMirror()
		s, err := New(smallParams(), rng.New(42), m.hooks())
		if err != nil {
			t.Fatal(err)
		}
		now := 0.0
		for {
			dt, fired := s.Step(6 - now)
			now += dt
			if !fired {
				break
			}
		}
		return m, s
	}
	m1, s1 := run()
	m2, s2 := run()
	if len(m1.trace) != len(m2.trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(m1.trace), len(m2.trace))
	}
	for i := range m1.trace {
		if m1.trace[i] != m2.trace[i] {
			t.Fatalf("trace[%d]: %q vs %q", i, m1.trace[i], m2.trace[i])
		}
	}
	if s1.Byzantine(0) != s2.Byzantine(0) || s1.FracDomainsExcluded() != s2.FracDomainsExcluded() {
		t.Fatal("final measures differ across identical seeds")
	}
}

// Step must never apply a jump beyond the horizon: the state (and hook
// trace) after a capped Step is identical to the state before it.
func TestInjectStepRespectsHorizon(t *testing.T) {
	m := newMirror()
	s, err := New(smallParams(), rng.New(9), m.hooks())
	if err != nil {
		t.Fatal(err)
	}
	traceLen := len(m.trace)
	running, undet := s.Running(0), s.Undet(0)
	dt, fired := s.Step(1e-12) // virtually certain to cap
	if fired {
		t.Skip("jump landed inside 1e-12 hours; astronomically unlikely")
	}
	if dt != 1e-12 {
		t.Fatalf("capped Step returned dt = %v, want the cap", dt)
	}
	if len(m.trace) != traceLen || s.Running(0) != running || s.Undet(0) != undet {
		t.Fatal("capped Step mutated state")
	}
}

// The injector is a port of ituadirect with a different draw sequence, so
// the two must agree statistically: 95% CIs on unavailability,
// unreliability, and excluded-domain fraction overlap on a small config.
func TestInjectAgreesWithDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical comparison")
	}
	const (
		reps = 400
		T    = 6.0
	)
	p := smallParams()

	var injU, injB, injX stats.Accumulator
	rootI := rng.New(101)
	for rep := 0; rep < reps; rep++ {
		s, err := New(p, rootI.Derive(uint64(rep)), Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		now, bad := 0.0, 0.0
		for {
			improper := s.Improper(0)
			dt, fired := s.Step(T - now)
			if improper {
				bad += dt
			}
			now += dt
			if !fired {
				break
			}
		}
		injU.Add(bad / T)
		if s.Byzantine(0) {
			injB.Add(1)
		} else {
			injB.Add(0)
		}
		injX.Add(s.FracDomainsExcluded())
	}

	var dirU, dirB, dirX stats.Accumulator
	rootD := rng.New(202)
	for rep := 0; rep < reps; rep++ {
		res, err := ituadirect.Run(p, rootD.Derive(uint64(rep)), []float64{T})
		if err != nil {
			t.Fatal(err)
		}
		dirU.Add(res.UnavailTime[0] / T)
		if res.ByzantineBy[0] {
			dirB.Add(1)
		} else {
			dirB.Add(0)
		}
		dirX.Add(res.FracDomainsExcluded[0])
	}

	for _, c := range []struct {
		name     string
		inj, dir stats.Accumulator
	}{
		{"unavail", injU, dirU},
		{"unrel", injB, dirB},
		{"excl", injX, dirX},
	} {
		im, ih := c.inj.Mean(), c.inj.HalfWidth(0.95)
		dm, dh := c.dir.Mean(), c.dir.HalfWidth(0.95)
		gap := im - dm
		if gap < 0 {
			gap = -gap
		}
		if gap > ih+dh {
			t.Errorf("%s: inject %.4f±%.4f vs direct %.4f±%.4f — CIs disjoint", c.name, im, ih, dm, dh)
		}
	}
}
