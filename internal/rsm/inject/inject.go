// Package inject drives the ITUA model's stochastic attack process against
// a live replicated service. It is a faithful port of the continuous-time
// simulation in internal/ituadirect — attack arrivals per core.Params rates,
// probabilistic intrusion detection, intra-domain and system-wide spread,
// host/domain exclusion under both management policies, and recovery-driven
// replica restart — re-expressed as a steppable process with lifecycle
// hooks, so the same stochastic law that the SAN and ituadirect evaluate
// analytically/by simulation can corrupt, kill, and restart real replicas
// (internal/rsm) between client probes.
//
// The port preserves the model's semantics (transition guards, rates, and
// state updates) but not its random-draw sequence: agreement with the model
// is established statistically (CI overlap, internal/integrity's fourth
// arm) and event-wise by the predicate oracle (Improper/Byzantine), not by
// bit-identical trajectories.
package inject

import (
	"fmt"

	"ituaval/internal/core"
	"ituaval/internal/rng"
)

// Hooks notifies the live cluster of replica lifecycle events as the attack
// process evolves. Nil hooks are skipped. Host indices are flattened
// g = domain*HostsPerDomain + host, replica slots are per-application.
type Hooks struct {
	// StartReplica fires when app's slot is (re)placed on host, at
	// construction time and on recovery.
	StartReplica func(app, slot, host int)
	// CorruptReplica fires when an attack corrupts app's slot.
	CorruptReplica func(app, slot int)
	// ConvictReplica fires when the group or the IDS convicts app's slot,
	// possibly before the management response (KillReplica) can run: the
	// model then counts the member as running and non-Byzantine, so the
	// live group masks its Byzantine script until the kill lands.
	ConvictReplica func(app, slot int)
	// KillReplica fires when the management response removes app's slot
	// (conviction response or host exclusion).
	KillReplica func(app, slot int)
	// ExcludeHost fires when host g is excluded from the system.
	ExcludeHost func(host int)
	// Partition fires when the environment severs domains domA and domB
	// (at most one partition is active at a time); the live transport
	// should drop traffic between hosts of the two domains.
	Partition func(domA, domB int)
	// Heal fires when the active partition heals; the live transport
	// should restore all links.
	Heal func()
}

// Member is the injector's view of one placed replica of an application.
type Member struct {
	Slot int // replica slot index
	Host int // flattened host index
	// Corrupt: the replica is corrupt and undetected (counts toward undet).
	Corrupt bool
	// Convicted: the group/IDS convicted it but the management response is
	// still pending (blocked on manager quorum). The live group quarantines
	// convicted members.
	Convicted bool
}

// Process is one replication of the attack CTMC, advanced one exponential
// jump at a time with Step.
type Process struct {
	p  core.Params
	rs *rng.Stream
	h  Hooks

	hostRate, repRate, mgrRate  float64
	hostFalseRate, repFalseRate float64
	pClass                      [3]float64
	detectClass                 [3]float64

	hostStatus   []int
	hostExcluded []bool
	hostDetected []bool
	propDomDone  []bool
	propSysDone  []bool
	mgrCorrupt   []bool
	mgrRemoved   []bool
	mgrDetected  []bool

	domExcluded []bool
	spreadDom   []int
	spreadSys   int
	intrusions  int

	onHost       [][]int
	repCorrupt   [][]bool
	repConvicted [][]bool
	repDetected  [][]bool

	running []int
	undet   []int
	grpFail []bool
	// grpFailBlocked records, per app, whether grpFail latched while the
	// partition isolated the group (partitionIsolated): in that state the
	// model declares Byzantine failure on corruption share alone, but no
	// forged quorum can actually form live until the cut heals.
	grpFailBlocked []bool
	needRec        []int

	// Environment faults, mirroring ituadirect: partA/partB are the
	// severed domains of the single active partition (-1 = healed);
	// inService[a] is true while a repair-crew member serves app a, and
	// crewBusy = Σ inService <= Params.RepairCrew.
	partA, partB int
	inService    []bool
	crewBusy     int

	buf []transition
}

type transition struct {
	rate  float64
	apply func()
}

// New builds the process in its initial state (replicas placed, no
// corruption) and fires StartReplica for every initial placement.
func New(p core.Params, rs *rng.Stream, h Hooks) (*Process, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("inject: %w", err)
	}
	D, H, A, R := p.NumDomains, p.HostsPerDomain, p.NumApps, p.RepsPerApp
	n := D * H
	s := &Process{
		p: p, rs: rs, h: h,
		hostStatus:     make([]int, n),
		hostExcluded:   make([]bool, n),
		hostDetected:   make([]bool, n),
		propDomDone:    make([]bool, n),
		propSysDone:    make([]bool, n),
		mgrCorrupt:     make([]bool, n),
		mgrRemoved:     make([]bool, n),
		mgrDetected:    make([]bool, n),
		domExcluded:    make([]bool, D),
		spreadDom:      make([]int, D),
		running:        make([]int, A),
		undet:          make([]int, A),
		grpFail:        make([]bool, A),
		grpFailBlocked: make([]bool, A),
		needRec:        make([]int, A),
		partA:          -1,
		partB:          -1,
		inService:      make([]bool, A),
	}
	wSum := p.AttackSplitHost + p.AttackSplitReplica + p.AttackSplitMgr
	hosts := float64(n)
	if p.RateBaseHosts > 0 {
		hosts = float64(p.RateBaseHosts)
	}
	replicas := float64(p.NumApps * p.InitialGroupSize())
	if p.RateBaseReplicas > 0 {
		replicas = float64(p.RateBaseReplicas)
	}
	s.hostRate = p.TotalAttackRate * p.AttackSplitHost / wSum / hosts
	s.repRate = p.TotalAttackRate * p.AttackSplitReplica / wSum / replicas
	s.mgrRate = p.TotalAttackRate * p.AttackSplitMgr / wSum / hosts
	fSum := p.FalseSplitHost + p.FalseSplitReplica
	s.hostFalseRate = p.TotalFalseAlarmRate * p.FalseSplitHost / fSum / hosts
	s.repFalseRate = p.TotalFalseAlarmRate * p.FalseSplitReplica / fSum / replicas
	s.pClass = [3]float64{p.PScript, p.PExploratory, p.PInnovative}
	s.detectClass = [3]float64{p.DetectScript, p.DetectExploratory, p.DetectInnovative}

	s.onHost = make([][]int, A)
	s.repCorrupt = make([][]bool, A)
	s.repConvicted = make([][]bool, A)
	s.repDetected = make([][]bool, A)
	perm := make([]int, D)
	for a := 0; a < A; a++ {
		s.onHost[a] = make([]int, R)
		for r := range s.onHost[a] {
			s.onHost[a][r] = -1
		}
		s.repCorrupt[a] = make([]bool, R)
		s.repConvicted[a] = make([]bool, R)
		s.repDetected[a] = make([]bool, R)
		rs.Perm(perm)
		k := p.InitialGroupSize()
		for i := 0; i < k; i++ {
			g := s.chooseHost(perm[i])
			s.onHost[a][i] = g
			s.running[a]++
			if s.h.StartReplica != nil {
				s.h.StartReplica(a, i, g)
			}
		}
	}
	return s, nil
}

// Step samples the next exponential jump. If it lands within maxDt, the
// transition is applied (the state visible through the accessors and hooks
// is then the post-jump state) and Step returns the sojourn time with
// fired = true. If the jump lands beyond maxDt — or the process is absorbed
// with nothing enabled — no transition is applied and Step returns
// (maxDt, false): the state is unchanged through maxDt. Like the model's
// simulators, state beyond the horizon is never touched.
func (s *Process) Step(maxDt float64) (dt float64, fired bool) {
	s.buf = s.collect(s.buf)
	total := 0.0
	for _, tr := range s.buf {
		total += tr.rate
	}
	if total <= 0 {
		return maxDt, false
	}
	dt = s.rs.Expo(total)
	if dt > maxDt {
		return maxDt, false
	}
	u := s.rs.Float64() * total
	acc := 0.0
	idx := len(s.buf) - 1
	for i, tr := range s.buf {
		acc += tr.rate
		if u < acc {
			idx = i
			break
		}
	}
	s.buf[idx].apply()
	s.drainPending()
	return dt, true
}

// Members returns app a's placed replicas in slot order: the group the live
// service runs, including convicted-pending (quarantined) members.
func (s *Process) Members(a int) []Member {
	var out []Member
	for r, g := range s.onHost[a] {
		if g < 0 {
			continue
		}
		out = append(out, Member{
			Slot:      r,
			Host:      g,
			Corrupt:   s.repCorrupt[a][r] && !s.repConvicted[a][r],
			Convicted: s.repConvicted[a][r],
		})
	}
	return out
}

// Running returns the number of placed replicas of app a (the model's
// replicas_running, which still counts convicted-pending members).
func (s *Process) Running(a int) int { return s.running[a] }

// Undet returns the number of corrupt undetected replicas of app a.
func (s *Process) Undet(a int) int { return s.undet[a] }

// Improper is the model's unavailability predicate for app a in the current
// state: at least one third of the running replicas corrupt undetected
// (vacuously true with zero replicas running), or an active partition
// isolating the whole replica group across the cut — every running replica
// in one of the severed domains with at least one on each side, so no
// relay path exists and neither side holds a response majority.
func (s *Process) Improper(a int) bool {
	return 3*s.undet[a] >= s.running[a] || s.partitionIsolated(a)
}

// partitionIsolated reports whether the active partition splits app a's
// placed replicas across the cut with none outside it: no relay path
// exists and neither side holds a response majority.
func (s *Process) partitionIsolated(a int) bool {
	if s.partA < 0 {
		return false
	}
	sawA, sawB := false, false
	for _, g := range s.onHost[a] {
		if g < 0 {
			continue
		}
		switch s.domainOf(g) {
		case s.partA:
			sawA = true
		case s.partB:
			sawB = true
		default:
			return false
		}
	}
	return sawA && sawB
}

// Partitioned returns the severed domain pair of the active partition, or
// ok = false while the network is healed.
func (s *Process) Partitioned() (domA, domB int, ok bool) {
	if s.partA < 0 {
		return 0, 0, false
	}
	return s.partA, s.partB, true
}

// CrewBusy returns the number of claimed repair-crew members (always zero
// with Params.RepairCrew == 0, i.e. unbounded repair capacity).
func (s *Process) CrewBusy() int { return s.crewBusy }

// Byzantine reports whether app a has latched the model's Byzantine-failure
// flag (undetected corrupt replicas reached one third while nonzero).
func (s *Process) Byzantine(a int) bool { return s.grpFail[a] }

// ByzantineBlocked reports whether app a's Byzantine latch fired while the
// partition isolated the group. The model latches on corruption share
// alone (state-based, like the SAN and direct engines), but in that
// geometry the colluders cannot reach the correct replicas to force a
// forged delivery, so the live service may legitimately never certify a
// wrong answer — the one environment-induced case where the model's
// unreliability bounds the measured value from above instead of equalling
// it.
func (s *Process) ByzantineBlocked(a int) bool { return s.grpFailBlocked[a] }

// FracDomainsExcluded is the model's excluded-domain fraction measure
// (zero under host exclusion, as in the paper).
func (s *Process) FracDomainsExcluded() float64 {
	if s.p.Policy == core.HostExclusion {
		return 0
	}
	n := 0
	for _, e := range s.domExcluded {
		if e {
			n++
		}
	}
	return float64(n) / float64(len(s.domExcluded))
}

func (s *Process) domainOf(g int) int { return g / s.p.HostsPerDomain }

func (s *Process) hostLoad(g int) int {
	n := 0
	for a := range s.onHost {
		for _, h := range s.onHost[a] {
			if h == g {
				n++
			}
		}
	}
	return n
}

func (s *Process) chooseHost(d int) int {
	H := s.p.HostsPerDomain
	var hostsUp []int
	for h := 0; h < H; h++ {
		if !s.hostExcluded[d*H+h] {
			hostsUp = append(hostsUp, d*H+h)
		}
	}
	switch s.p.Placement {
	case core.LeastLoadedPlacement:
		best := hostsUp[0]
		for _, g := range hostsUp[1:] {
			if s.hostLoad(g) < s.hostLoad(best) {
				best = g
			}
		}
		return best
	case core.WeightedRandomPlacement:
		weights := make([]float64, len(hostsUp))
		for i, g := range hostsUp {
			weights[i] = 1 / (1 + float64(s.hostLoad(g)))
		}
		return hostsUp[s.rs.Category(weights)]
	default:
		return hostsUp[s.rs.Choose(len(hostsUp))]
	}
}

func (s *Process) hasReplica(a, d int) bool {
	for _, g := range s.onHost[a] {
		if g >= 0 && s.domainOf(g) == d {
			return true
		}
	}
	return false
}

func (s *Process) mgrsRunning() int {
	n := 0
	for g := range s.mgrRemoved {
		if !s.hostExcluded[g] {
			n++
		}
	}
	return n
}

func (s *Process) undetMgrs() int {
	n := 0
	for g := range s.mgrCorrupt {
		if s.mgrCorrupt[g] && !s.hostExcluded[g] {
			n++
		}
	}
	return n
}

func (s *Process) globalQuorumOK() bool {
	// An active partition blocks the system-wide management quorum,
	// mirroring core and ituadirect.
	if s.partA >= 0 {
		return false
	}
	return 3*s.undetMgrs() < s.mgrsRunning()
}

// cutsDomain reports whether domain d is on either side of the active
// partition.
func (s *Process) cutsDomain(d int) bool {
	return s.partA >= 0 && (d == s.partA || d == s.partB)
}

func (s *Process) domainGroupOK(d int) bool {
	H := s.p.HostsPerDomain
	up, corrupt := 0, 0
	for h := 0; h < H; h++ {
		g := d*H + h
		if !s.hostExcluded[g] {
			up++
			if s.mgrCorrupt[g] {
				corrupt++
			}
		}
	}
	return 3*corrupt < up
}

func (s *Process) checkByzantine(a int) {
	if s.undet[a] > 0 && 3*s.undet[a] >= s.running[a] && !s.grpFail[a] {
		s.grpFail[a] = true
		s.grpFailBlocked[a] = s.partitionIsolated(a)
	}
}

func (s *Process) spreadBoost(d int) float64 {
	return s.p.SpreadRateCoeff * (s.p.DomainSpreadRate*float64(s.spreadDom[d]) +
		s.p.SystemSpreadRate*float64(s.spreadSys))
}

func (s *Process) assetBoost(d int) float64 {
	return s.p.AssetSpreadCoeff * s.p.DomainSpreadRate * float64(s.spreadDom[d])
}

// collect enumerates every enabled transition, mirroring
// ituadirect.(*process).collect clause for clause.
func (s *Process) collect(buf []transition) []transition {
	buf = buf[:0]
	p := s.p

	// Environment faults (mirroring ituadirect): one partition at a time
	// over a uniformly chosen domain pair, and Binomial(k, p) campaign
	// batches over eligible hosts.
	if p.PartitionRate > 0 && p.PartitionHealRate > 0 && len(s.domExcluded) > 1 {
		if s.partA < 0 {
			buf = append(buf, transition{p.PartitionRate, func() {
				D := len(s.domExcluded)
				k := s.rs.Choose(D * (D - 1) / 2)
				da := 0
				for k >= D-1-da {
					k -= D - 1 - da
					da++
				}
				s.partA, s.partB = da, da+1+k
				if s.h.Partition != nil {
					s.h.Partition(s.partA, s.partB)
				}
			}})
		} else {
			buf = append(buf, transition{p.PartitionHealRate, func() {
				s.partA, s.partB = -1, -1
				if s.h.Heal != nil {
					s.h.Heal()
				}
			}})
		}
	}
	if p.CampaignRate > 0 && p.CampaignSize > 0 && p.CampaignProb > 0 {
		for g := range s.hostStatus {
			if s.hostStatus[g] == 0 && !s.hostExcluded[g] {
				buf = append(buf, transition{p.CampaignRate, func() { s.campaign() }})
				break
			}
		}
	}

	for g := range s.hostStatus {
		g := g
		if s.hostExcluded[g] {
			continue
		}
		d := s.domainOf(g)

		if s.hostStatus[g] == 0 && s.hostRate > 0 {
			rate := s.hostRate * (1 + s.spreadBoost(d))
			buf = append(buf, transition{rate, func() {
				s.hostStatus[g] = 1 + s.rs.Category(s.pClass[:])
				s.intrusions++
			}})
		}

		if s.hostStatus[g] > 0 && !s.propDomDone[g] && p.DomainSpreadRate > 0 {
			buf = append(buf, transition{p.DomainSpreadRate, func() {
				s.propDomDone[g] = true
				s.spreadDom[d]++
			}})
		}
		if s.hostStatus[g] > 0 && !s.propSysDone[g] && p.SystemSpreadRate > 0 &&
			!s.cutsDomain(d) {
			buf = append(buf, transition{p.SystemSpreadRate, func() {
				s.propSysDone[g] = true
				s.spreadSys++
			}})
		}

		if !s.mgrCorrupt[g] && !s.mgrRemoved[g] && s.mgrRate > 0 {
			rate := s.mgrRate * (1 + s.assetBoost(d))
			if s.hostStatus[g] > 0 {
				rate *= p.CorruptionMult
			}
			buf = append(buf, transition{rate, func() {
				s.mgrCorrupt[g] = true
				s.intrusions++
			}})
		}

		if s.hostStatus[g] > 0 && !s.hostDetected[g] && p.HostDetectRate > 0 {
			buf = append(buf, transition{p.HostDetectRate, func() {
				s.hostDetected[g] = true
				class := s.hostStatus[g] - 1
				if s.rs.Bernoulli(s.detectClass[class]) &&
					!s.mgrCorrupt[g] && s.domainGroupOK(d) {
					s.exclude(g)
				}
			}})
		}

		if s.mgrCorrupt[g] && !s.mgrDetected[g] && p.MgrDetectRate > 0 {
			buf = append(buf, transition{p.MgrDetectRate, func() {
				s.mgrDetected[g] = true
				if s.rs.Bernoulli(p.DetectMgr) &&
					(s.domainGroupOK(d) || s.globalQuorumOK()) {
					s.exclude(g)
				}
			}})
		}

		if s.intrusions == 0 && s.hostFalseRate > 0 {
			buf = append(buf, transition{s.hostFalseRate, func() {
				if !s.mgrCorrupt[g] && s.domainGroupOK(d) {
					s.exclude(g)
				}
			}})
		}
	}

	for a := range s.onHost {
		a := a
		for r := range s.onHost[a] {
			r := r
			g := s.onHost[a][r]
			if g < 0 {
				continue
			}
			d := s.domainOf(g)

			if !s.repCorrupt[a][r] && !s.repConvicted[a][r] && s.repRate > 0 {
				rate := s.repRate * (1 + s.assetBoost(d))
				if s.hostStatus[g] > 0 {
					rate *= p.CorruptionMult
				}
				buf = append(buf, transition{rate, func() {
					s.repCorrupt[a][r] = true
					s.undet[a]++
					s.intrusions++
					s.checkByzantine(a)
					if s.h.CorruptReplica != nil {
						s.h.CorruptReplica(a, r)
					}
				}})
			}

			if s.repCorrupt[a][r] && !s.repConvicted[a][r] && !s.repDetected[a][r] && p.ReplicaDetectRate > 0 {
				buf = append(buf, transition{p.ReplicaDetectRate, func() {
					s.repDetected[a][r] = true
					if s.rs.Bernoulli(p.DetectReplica) {
						s.convict(a, r)
					}
				}})
			}

			if s.repCorrupt[a][r] && !s.repConvicted[a][r] && p.MisbehaveRate > 0 &&
				s.running[a] > 3*s.undet[a] {
				buf = append(buf, transition{p.MisbehaveRate, func() {
					s.convict(a, r)
				}})
			}

			if s.intrusions == 0 && !s.repCorrupt[a][r] && !s.repConvicted[a][r] && s.repFalseRate > 0 {
				buf = append(buf, transition{s.repFalseRate, func() {
					s.convict(a, r)
				}})
			}
		}

		// With a bounded repair crew the exponential recovery service runs
		// only while a crew member is claimed (claims happen in drainCrew);
		// unbounded otherwise.
		if p.RepairCrew > 0 {
			if s.inService[a] && s.globalQuorumOK() && s.qualifyingDomainExists(a) {
				buf = append(buf, transition{p.RecoveryRate, func() {
					s.recoverOne(a)
					s.inService[a] = false
					s.crewBusy--
				}})
			}
		} else if s.needRec[a] > 0 && s.globalQuorumOK() && s.qualifyingDomainExists(a) {
			buf = append(buf, transition{p.RecoveryRate, func() {
				s.recoverOne(a)
			}})
		}
	}
	return buf
}

// campaign corrupts a Binomial(CampaignSize, CampaignProb) batch of
// uniformly chosen eligible (uncorrupted, unexcluded) hosts in one event.
func (s *Process) campaign() {
	var eligible []int
	for g := range s.hostStatus {
		if s.hostStatus[g] == 0 && !s.hostExcluded[g] {
			eligible = append(eligible, g)
		}
	}
	k := s.p.CampaignSize
	if len(eligible) <= k {
		k = len(eligible)
	} else {
		for i := 0; i < k; i++ {
			j := i + s.rs.Choose(len(eligible)-i)
			eligible[i], eligible[j] = eligible[j], eligible[i]
		}
	}
	for _, g := range eligible[:k] {
		if !s.rs.Bernoulli(s.p.CampaignProb) {
			continue
		}
		s.hostStatus[g] = 1 + s.rs.Category(s.pClass[:])
		s.intrusions++
	}
}

func (s *Process) convict(a, r int) {
	if s.repCorrupt[a][r] {
		s.undet[a]--
	}
	s.repConvicted[a][r] = true
	if s.h.ConvictReplica != nil {
		s.h.ConvictReplica(a, r)
	}
	s.respondIfAble(a, r)
}

func (s *Process) respondIfAble(a, r int) {
	g := s.onHost[a][r]
	if g < 0 || !s.repConvicted[a][r] {
		return
	}
	if !s.domainGroupOK(s.domainOf(g)) && !s.globalQuorumOK() {
		return
	}
	if s.p.ExcludeOnReplicaConviction {
		s.exclude(g)
		return
	}
	s.killSlot(a, r)
}

func (s *Process) drainPending() {
	for a := range s.onHost {
		for r := range s.onHost[a] {
			if s.repConvicted[a][r] && s.onHost[a][r] >= 0 {
				s.respondIfAble(a, r)
			}
		}
	}
	s.drainCrew()
}

// drainCrew assigns idle repair-crew members to applications with pending,
// serviceable recoveries, in app order (at most one member per app).
func (s *Process) drainCrew() {
	if s.p.RepairCrew == 0 {
		return
	}
	for a := range s.inService {
		if s.crewBusy >= s.p.RepairCrew {
			return
		}
		if !s.inService[a] && s.needRec[a] > 0 && s.globalQuorumOK() &&
			s.qualifyingDomainExists(a) {
			s.inService[a] = true
			s.crewBusy++
		}
	}
}

func (s *Process) killSlot(a, r int) {
	if s.onHost[a][r] < 0 {
		return
	}
	if s.repCorrupt[a][r] && !s.repConvicted[a][r] {
		s.undet[a]--
	}
	s.onHost[a][r] = -1
	s.repCorrupt[a][r] = false
	s.repConvicted[a][r] = false
	s.repDetected[a][r] = false
	s.running[a]--
	s.needRec[a]++
	s.checkByzantine(a)
	if s.h.KillReplica != nil {
		s.h.KillReplica(a, r)
	}
}

func (s *Process) exclude(g int) {
	if s.p.Policy == core.HostExclusion {
		s.excludeHost(g)
		return
	}
	d := s.domainOf(g)
	if s.domExcluded[d] {
		return
	}
	H := s.p.HostsPerDomain
	for gg := d * H; gg < (d+1)*H; gg++ {
		s.excludeHost(gg)
	}
	s.domExcluded[d] = true
}

func (s *Process) excludeHost(g int) {
	if s.hostExcluded[g] {
		return
	}
	s.hostExcluded[g] = true
	s.mgrCorrupt[g] = false
	s.mgrRemoved[g] = true
	for a := range s.onHost {
		for r := range s.onHost[a] {
			if s.onHost[a][r] == g {
				s.killSlot(a, r)
			}
		}
	}
	if s.h.ExcludeHost != nil {
		s.h.ExcludeHost(g)
	}
}

func (s *Process) qualifyingDomainExists(a int) bool {
	for d := range s.domExcluded {
		if s.domainQualifies(a, d) {
			return true
		}
	}
	return false
}

func (s *Process) domainQualifies(a, d int) bool {
	if s.domExcluded[d] || s.hasReplica(a, d) {
		return false
	}
	H := s.p.HostsPerDomain
	for h := 0; h < H; h++ {
		if !s.hostExcluded[d*H+h] {
			return true
		}
	}
	return false
}

func (s *Process) recoverOne(a int) {
	var doms []int
	for d := range s.domExcluded {
		if s.domainQualifies(a, d) {
			doms = append(doms, d)
		}
	}
	if len(doms) == 0 {
		return
	}
	g := s.chooseHost(doms[s.rs.Choose(len(doms))])
	for r := range s.onHost[a] {
		if s.onHost[a][r] < 0 {
			s.onHost[a][r] = g
			s.running[a]++
			s.needRec[a]--
			if s.h.StartReplica != nil {
				s.h.StartReplica(a, r, g)
			}
			return
		}
	}
	panic("inject: no free slot during recovery")
}
