package ituaval_test

import (
	"math"
	"strings"
	"testing"

	"ituaval"
)

func TestFacadeBuildAndSimulate(t *testing.T) {
	p := ituaval.DefaultParams()
	p.NumDomains = 4
	p.HostsPerDomain = 2
	p.NumApps = 2
	p.RepsPerApp = 3
	m, err := ituaval.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ituaval.Simulate(ituaval.SimSpec{
		Model: m.SAN, Until: 5, Reps: 100, Seed: 1,
		Vars: []ituaval.Var{
			m.Unavailability("u", 0, 0, 5),
			m.Unreliability("r", 0, 5),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	u := res.MustGet("u")
	if u.N != 100 || u.Mean < 0 || u.Mean > 1 {
		t.Fatalf("unavailability estimate %+v", u)
	}
}

func TestFacadePolicies(t *testing.T) {
	if ituaval.DomainExclusion.String() != "domain-exclusion" ||
		ituaval.HostExclusion.String() != "host-exclusion" {
		t.Fatal("policy re-exports broken")
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ituaval.Experiments()
	want := map[string]bool{"fig3": true, "fig4": true, "fig5": true, "xval": true, "numval": true}
	found := 0
	for _, id := range ids {
		if want[id] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("experiment registry missing entries: %v", ids)
	}
	if _, err := ituaval.RunExperiment("no-such-experiment", ituaval.StudyConfig{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFacadeRunExperimentAndWrite(t *testing.T) {
	fig, err := ituaval.RunExperiment("numval", ituaval.StudyConfig{Reps: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := ituaval.WriteFigureText(&sb, fig); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure X2") {
		t.Fatalf("unexpected output:\n%s", sb.String())
	}
}

func TestFacadeDirectRun(t *testing.T) {
	p := ituaval.DefaultParams()
	p.NumDomains = 3
	p.HostsPerDomain = 2
	p.NumApps = 2
	p.RepsPerApp = 3
	res, err := ituaval.DirectRun(p, 7, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UnavailTime) != 2 || res.UnavailTime[0] > res.UnavailTime[1] {
		t.Fatalf("unavailability times not cumulative: %v", res.UnavailTime)
	}
	if res.UnavailTime[1] > 10 || math.IsNaN(res.UnavailTime[1]) {
		t.Fatalf("unavailability time out of range: %v", res.UnavailTime)
	}
}
