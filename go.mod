module ituaval

go 1.22
